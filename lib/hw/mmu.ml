module Trace = Fidelius_obs.Trace

type access = Read | Write | Exec

let access_to_string = function Read -> "read" | Write -> "write" | Exec -> "exec"

exception Fault of { space : int; vfn : Addr.vfn; access : access; reason : string }
exception Npt_fault of { domid : int; gfn : Addr.gfn; access : access }

let fault space vfn access reason =
  raise (Fault { space = Pagetable.id space; vfn; access; reason })

let translate (m : Machine.t) space access addr =
  let vfn = Addr.frame_of addr in
  ignore (Tlb.lookup m.tlb ~space_id:(Pagetable.id space) vfn);
  match Pagetable.lookup space vfn with
  | None -> fault space vfn access "not present"
  | Some pte -> (
      match access with
      | Read -> (pte.frame, pte)
      | Write ->
          (* Supervisor writes honour CR0.WP: clear WP and read-only
             mappings become writable — the type-1 gate's lever. *)
          if pte.writable || not (Cpu.wp m.cpu) then (pte.frame, pte)
          else fault space vfn access "read-only mapping with CR0.WP set"
      | Exec ->
          if pte.executable || not (Cpu.nxe m.cpu) then (pte.frame, pte)
          else fault space vfn access "non-executable mapping with EFER.NXE set")

let exec_ok (m : Machine.t) space vfn =
  match Pagetable.lookup space vfn with
  | None -> false
  | Some pte -> pte.executable || not (Cpu.nxe m.cpu)

let wx_ok (m : Machine.t) space vfn =
  match Pagetable.lookup space vfn with
  | None -> false
  | Some pte ->
      (pte.writable || not (Cpu.wp m.cpu)) && (pte.executable || not (Cpu.nxe m.cpu))

let selector_of_pte (pte : Pagetable.proto) ~asid =
  if pte.c_bit then (match asid with None -> Memctrl.Smek | Some a -> Memctrl.Asid a)
  else Memctrl.Plain

(* Block-granular CPU access through cache + controller. Consecutive cache
   misses are fetched from the controller as one span (one decryption pass
   per run instead of one per block); per-block charges are linear in the
   block count, so the ledger sees the same cost either way. [fill] decides
   whether this access deposits plaintext lines (encrypted traffic does). *)
let cached_read (m : Machine.t) sel pfn ~off ~len =
  let encrypted = match sel with Memctrl.Plain -> false | Memctrl.Smek | Memctrl.Asid _ -> true in
  let first = off / Addr.block_size in
  let last = (off + len - 1) / Addr.block_size in
  let span = Bytes.create ((last - first + 1) * Addr.block_size) in
  let fetch_run run_first run_last =
    let run_len = (run_last - run_first + 1) * Addr.block_size in
    let lines =
      Memctrl.read m.ctrl sel pfn ~off:(run_first * Addr.block_size) ~len:run_len
    in
    Bytes.blit lines 0 span ((run_first - first) * Addr.block_size) run_len;
    if encrypted then
      for blk = run_first to run_last do
        Cache.fill m.cache pfn ~block:blk
          (Bytes.sub lines ((blk - run_first) * Addr.block_size) Addr.block_size)
      done
  in
  if not (Cache.frame_resident m.cache pfn) then
    (* No line of this frame is resident, so every probe would miss and the
       whole range is one fetch run. Probe misses charge nothing, so this
       shortcut is ledger-identical. *)
    fetch_run first last
  else begin
    let pending = ref (-1) in
    (* start of the current miss run, -1 if none *)
    let flush upto = if !pending >= 0 then (fetch_run !pending upto; pending := -1) in
    for blk = first to last do
      match Cache.probe m.cache pfn ~block:blk with
      | Some line ->
          flush (blk - 1);
          Bytes.blit line 0 span ((blk - first) * Addr.block_size) Addr.block_size
      | None -> if !pending < 0 then pending := blk
    done;
    flush last
  end;
  Bytes.sub span (off - (first * Addr.block_size)) len

let cached_write (m : Machine.t) sel pfn ~off data =
  let len = Bytes.length data in
  if len > 0 then begin
    let encrypted = match sel with Memctrl.Plain -> false | Memctrl.Smek | Memctrl.Asid _ -> true in
    Memctrl.write m.ctrl sel pfn ~off data;
    (* Write-through: refresh plaintext lines for the fully covered blocks;
       invalidate partially covered ones so stale plaintext cannot linger.
       [Cache.fill] copies its argument, so one line buffer serves the whole
       span. Plain traffic never fills, so when the frame has no resident
       lines the loop would be all probe misses — skip it (misses charge
       nothing, so the shortcut is ledger-identical). *)
    if encrypted || Cache.frame_resident m.cache pfn then begin
      let line_buf = Bytes.create Addr.block_size in
      let first = off / Addr.block_size in
      let last = (off + len - 1) / Addr.block_size in
      for blk = first to last do
        let blk_start = blk * Addr.block_size in
        if encrypted && blk_start >= off && blk_start + Addr.block_size <= off + len then begin
          Bytes.blit data (blk_start - off) line_buf 0 Addr.block_size;
          Cache.fill m.cache pfn ~block:blk line_buf
        end
        else
          match Cache.probe m.cache pfn ~block:blk with
          | Some _ ->
              (* Partial overwrite of a resident line: reload it through the
                 engine to keep it coherent. *)
              let line =
                Memctrl.read m.ctrl sel pfn ~off:blk_start ~len:Addr.block_size
              in
              if encrypted then Cache.fill m.cache pfn ~block:blk line
          | None -> ()
      done
    end
  end

let read_frame_as (m : Machine.t) ~sel pfn ~off ~len = cached_read m sel pfn ~off ~len

(* Split a byte range into per-page chunks. *)
let iter_pages ~addr ~len f =
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let off = Addr.offset_of a in
    let chunk = min (len - !pos) (Addr.page_size - off) in
    f ~chunk_addr:a ~chunk_off:!pos ~chunk_len:chunk;
    pos := !pos + chunk
  done

let read m space ~addr ~len =
  let out = Bytes.create len in
  iter_pages ~addr ~len (fun ~chunk_addr ~chunk_off ~chunk_len ->
      let pfn, pte = translate m space Read chunk_addr in
      let sel = selector_of_pte pte ~asid:None in
      let part = cached_read m sel pfn ~off:(Addr.offset_of chunk_addr) ~len:chunk_len in
      Bytes.blit part 0 out chunk_off chunk_len);
  out

let write m space ~addr data =
  iter_pages ~addr ~len:(Bytes.length data) (fun ~chunk_addr ~chunk_off ~chunk_len ->
      let pfn, pte = translate m space Write chunk_addr in
      let sel = selector_of_pte pte ~asid:None in
      cached_write m sel pfn ~off:(Addr.offset_of chunk_addr)
        (Bytes.sub data chunk_off chunk_len))


let check_frame_writable (m : Machine.t) ~space pfn =
  if m.enforce_paging then begin
    match Pagetable.frame_mapped space pfn with
    | [] ->
        raise
          (Fault
             { space = Pagetable.id space;
               vfn = pfn;
               access = Write;
               reason = Printf.sprintf "frame 0x%x is not mapped in the acting space" pfn })
    | maps ->
        let writable_somewhere =
          List.exists (fun (_, (p : Pagetable.proto)) -> p.writable) maps
        in
        if not (writable_somewhere || not (Cpu.wp m.cpu)) then
          raise
            (Fault
               { space = Pagetable.id space;
                 vfn = pfn;
                 access = Write;
                 reason =
                   Printf.sprintf "frame 0x%x is mapped read-only and CR0.WP is set" pfn })
  end

let set_pte (m : Machine.t) ~space ~table vfn proto =
  (* The PTE store is a memory write to the page-table-page: the acting
     space must hold a writable mapping of that frame (or any mapping with
     CR0.WP clear). *)
  let backing = Pagetable.backing_frame_of table vfn in
  check_frame_writable m ~space backing;
  Cost.charge m.ledger "pte-write" m.costs.Cost.cacheline_write;
  if Trace.enabled () then Trace.emit (Trace.Pte_write { vfn });
  Pagetable.hw_set table vfn proto;
  Tlb.flush_entry m.tlb ~space_id:(Pagetable.id table) vfn

let guest_translate (m : Machine.t) ~domid ~gpt ~npt ~asid access addr =
  let gvfn = Addr.frame_of addr in
  ignore (Tlb.lookup m.tlb ~space_id:(Pagetable.id gpt) gvfn);
  match Pagetable.lookup gpt gvfn with
  | None -> fault gpt gvfn access "guest page table: not present"
  | Some gpte ->
      if access = Write && not gpte.writable then
        fault gpt gvfn access "guest page table: read-only";
      let gfn = gpte.frame in
      (match Pagetable.lookup npt gfn with
      | None -> raise (Npt_fault { domid; gfn; access })
      | Some npte ->
          if access = Write && not npte.writable then
            raise (Npt_fault { domid; gfn; access });
          (* Guest C-bit selects the guest key and takes priority; the
             nested C-bit alone selects the host SME key. *)
          let sel =
            if gpte.c_bit then Memctrl.Asid asid
            else if npte.c_bit then Memctrl.Smek
            else Memctrl.Plain
          in
          (npte.frame, sel))

let guest_read m ~domid ~gpt ~npt ~asid ~addr ~len =
  let out = Bytes.create len in
  iter_pages ~addr ~len (fun ~chunk_addr ~chunk_off ~chunk_len ->
      let pfn, sel = guest_translate m ~domid ~gpt ~npt ~asid Read chunk_addr in
      let part = cached_read m sel pfn ~off:(Addr.offset_of chunk_addr) ~len:chunk_len in
      Bytes.blit part 0 out chunk_off chunk_len);
  out

let guest_write m ~domid ~gpt ~npt ~asid ~addr data =
  iter_pages ~addr ~len:(Bytes.length data) (fun ~chunk_addr ~chunk_off ~chunk_len ->
      let pfn, sel = guest_translate m ~domid ~gpt ~npt ~asid Write chunk_addr in
      cached_write m sel pfn ~off:(Addr.offset_of chunk_addr)
        (Bytes.sub data chunk_off chunk_len))
