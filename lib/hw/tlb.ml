module Trace = Fidelius_obs.Trace
module Plan = Fidelius_inject.Plan
module Site = Fidelius_inject.Site

type t = {
  cached : (int * Addr.vfn, unit) Hashtbl.t;
  ledger : Cost.ledger;
  costs : Cost.table;
  mutable full_flushes : int;
}

let create ledger =
  { cached = Hashtbl.create 1024; ledger; costs = Cost.default; full_flushes = 0 }

let lookup t ~space_id vfn =
  let key = (space_id, vfn) in
  if Hashtbl.mem t.cached key then begin
    Cost.charge t.ledger "tlb-hit" t.costs.Cost.cache_hit;
    true
  end
  else begin
    Cost.charge t.ledger "tlb-miss" t.costs.Cost.tlb_miss_walk;
    if Trace.enabled () then Trace.emit (Trace.Walk { space = space_id; vfn });
    Hashtbl.replace t.cached key ();
    false
  end

(* A hypervisor that "forgets" TLB maintenance does no work at all: the
   omitted flush charges nothing and invalidates nothing. *)
let flush_entry t ~space_id vfn =
  if Plan.armed () && Plan.fire Site.Tlb_omit_flush then ()
  else begin
    Hashtbl.remove t.cached (space_id, vfn);
    Cost.charge t.ledger "tlb-flush" t.costs.Cost.tlb_flush_entry;
    if Trace.enabled () then Trace.emit (Trace.Tlb_flush { full = false })
  end

let flush_all t =
  if Plan.armed () && Plan.fire Site.Tlb_omit_flush then ()
  else begin
    Hashtbl.reset t.cached;
    t.full_flushes <- t.full_flushes + 1;
    Cost.charge t.ledger "tlb-flush" t.costs.Cost.tlb_flush_full;
    if Trace.enabled () then Trace.emit (Trace.Tlb_flush { full = true })
  end

let entries t = Hashtbl.length t.cached
let flushes t = t.full_flushes
