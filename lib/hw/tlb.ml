module Trace = Fidelius_obs.Trace
module Plan = Fidelius_inject.Plan
module Site = Fidelius_inject.Site

(* Charge sites, interned once. *)
let c_tlb_hit = Cost.intern "tlb-hit"
let c_tlb_miss = Cost.intern "tlb-miss"
let c_tlb_flush = Cost.intern "tlb-flush"

type t = {
  cached : (int, unit) Hashtbl.t;
  ledger : Cost.ledger;
  costs : Cost.table;
  mutable full_flushes : int;
  (* Most-recently-hit key: straight-line access runs re-translate the
     same page, so this one-entry front answers most lookups without the
     hashed probe. [min_int] = empty; charges are identical either way. *)
  mutable mru : int;
}

(* One tagged int per translation: the space id above bit 40, the vfn
   below — no tuple allocation per lookup. 40 bits of vfn is the same
   ceiling the PTE encoding imposes on frame numbers. *)
let key ~space_id vfn = (space_id lsl 40) lor vfn

let create ledger =
  { cached = Hashtbl.create 1024; ledger; costs = Cost.default; full_flushes = 0;
    mru = min_int }

let lookup t ~space_id vfn =
  let key = key ~space_id vfn in
  if key = t.mru || Hashtbl.mem t.cached key then begin
    Cost.charge_id t.ledger c_tlb_hit t.costs.Cost.cache_hit;
    t.mru <- key;
    true
  end
  else begin
    Cost.charge_id t.ledger c_tlb_miss t.costs.Cost.tlb_miss_walk;
    if Trace.enabled () then Trace.emit (Trace.Walk { space = space_id; vfn });
    Hashtbl.replace t.cached key ();
    t.mru <- key;
    false
  end

(* A hypervisor that "forgets" TLB maintenance does no work at all: the
   omitted flush charges nothing and invalidates nothing. *)
let flush_entry t ~space_id vfn =
  if Plan.armed () && Plan.fire Site.Tlb_omit_flush then ()
  else begin
    let key = key ~space_id vfn in
    if key = t.mru then t.mru <- min_int;
    Hashtbl.remove t.cached key;
    Cost.charge_id t.ledger c_tlb_flush t.costs.Cost.tlb_flush_entry;
    if Trace.enabled () then Trace.emit (Trace.Tlb_flush { full = false })
  end

let flush_all t =
  if Plan.armed () && Plan.fire Site.Tlb_omit_flush then ()
  else begin
    Hashtbl.reset t.cached;
    t.mru <- min_int;
    t.full_flushes <- t.full_flushes + 1;
    Cost.charge_id t.ledger c_tlb_flush t.costs.Cost.tlb_flush_full;
    if Trace.enabled () then Trace.emit (Trace.Tlb_flush { full = true })
  end

let entries t = Hashtbl.length t.cached
let flushes t = t.full_flushes
