(** Privileged-instruction placement registry.

    The paper's isolation depends on controlling *where* certain privileged
    instructions exist in the host code region (Table 2): after a binary
    scan, each dangerous opcode exists exactly once ("monopolized"), wrapped
    in Fidelius' gate logic; VMRUN and [mov CR3] additionally live in pages
    that are unmapped from the hypervisor's view until a type-3 gate remaps
    them.

    The registry records instruction instances (opcode, page, handler) and
    is the only software path to their effects: {!execute} checks that the
    acting address space currently maps the instance's page executable —
    i.e. the very check the hardware instruction fetch performs — and then
    runs the installed handler, which carries the gate's policy. *)

type op =
  | Mov_cr0
  | Mov_cr3
  | Mov_cr4
  | Wrmsr   (** EFER writes *)
  | Vmrun
  | Lgdt
  | Lidt

val op_to_string : op -> string
val all_ops : op list

type registry

val create : Cost.ledger -> registry

val place :
  registry -> op -> page:Addr.vfn -> handler:(int64 -> (unit, string) result) -> unit
(** Boot-time placement (trusted setup or pre-scan hypervisor code). *)

val scrub : registry -> op -> keep:Addr.vfn -> unit
(** The binary scan: remove every instance of [op] except those on page
    [keep]. *)

val instances : registry -> op -> Addr.vfn list
val monopolized : registry -> op -> bool
(** True when exactly one instance of [op] exists. *)

val execute :
  registry -> exec_ok:(Addr.vfn -> bool) -> op -> int64 -> (unit, string) result
(** Fetch-check then run. [Error] carries the fault or policy-denial
    reason. When several instances exist (pre-scan), the first executable
    one runs — which is exactly why the scan matters. *)

val inject :
  registry ->
  wx_ok:(Addr.vfn -> bool) ->
  op -> page:Addr.vfn -> handler:(int64 -> (unit, string) result) ->
  (unit, string) result
(** Code-injection attempt at runtime: succeeds only if the target page is
    simultaneously writable and executable in the acting address space
    ([wx_ok]), which Fidelius' W^X layout rules out. *)
