(** CPU architectural state: mode, general-purpose registers and the control
    registers whose bits the paper's isolation depends on (CR0.WP, CR0.PG,
    CR4.SMEP, EFER.NXE, CR3).

    Control-register *setters* model the microarchitectural effect of the
    corresponding privileged instructions. Software never calls them
    directly: the only software-reachable path is {!Insn.execute}, whose
    handler (installed by Fidelius as a gate) decides whether the write is
    allowed. The [in_fidelius] flag records which protection context the
    host kernel is currently executing in — the simulator's rendering of
    "control is inside the Fidelius text section". *)

type mode =
  | Host
  | Guest of int  (** domain id *)

type reg =
  | Rax | Rbx | Rcx | Rdx | Rsi | Rdi | Rbp | Rsp
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

type t

val create : unit -> t
(** Fresh CPU in host mode, paging on, WP set, SMEP set, NXE set. *)

val mode : t -> mode
val set_mode : t -> mode -> unit

val get_reg : t -> reg -> int64
val set_reg : t -> reg -> int64 -> unit

val nr_regs : int
(** 16. *)

val reg_index : reg -> int
(** Dense 0-based index ([Rax] = 0 … [R15] = 15), matching {!regs} order. *)

val get_reg_i : t -> int -> int64
val set_reg_i : t -> int -> int64 -> unit
(** Indexed register access for preindexed loops (world-switch capture and
    restore); moving [int64]s between arrays this way copies pointers only,
    so the loops allocate nothing. *)

val unsafe_get_reg_i : t -> int -> int64
val unsafe_set_reg_i : t -> int -> int64 -> unit
(** Unchecked variants for the per-crossing loops whose bounds are pinned
    to [0 .. nr_regs - 1]; the caller guarantees the range. *)

val snapshot_regs_into : t -> int64 array -> unit
(** Blit all 16 GPRs into a caller-owned array (allocation-free). *)

val all_regs : t -> (reg * int64) list
val clear_regs : t -> unit
(** Zero every GPR (used when masking guest state on exit). *)

val rip : t -> int64
val set_rip : t -> int64 -> unit

val wp : t -> bool
val paging : t -> bool
val smep : t -> bool
val nxe : t -> bool
val cr3 : t -> int
(** Current address-space (page-table) id. *)

val in_fidelius : t -> bool
val enter_fidelius : t -> unit
val leave_fidelius : t -> unit

val priv_set_wp : t -> bool -> unit
(** Microcode effect of a CR0 write touching WP. *)

val priv_set_paging : t -> bool -> unit
val priv_set_smep : t -> bool -> unit
val priv_set_nxe : t -> bool -> unit
val priv_set_cr3 : t -> int -> unit

val interrupts_enabled : t -> bool
val priv_set_interrupts : t -> bool -> unit

val reg_of_string : string -> reg option
val reg_to_string : reg -> string
val regs : reg list
