exception Denied of string

let deny fmt = Printf.ksprintf (fun m -> raise (Denied m)) fmt
