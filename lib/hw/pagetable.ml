type proto = {
  frame : Addr.pfn;
  writable : bool;
  executable : bool;
  c_bit : bool;
}

let entries_per_page = Addr.page_size / 8

type t = {
  table_id : int;
  mem : Physmem.t;
  alloc : unit -> Addr.pfn;
  groups : (int, Addr.pfn) Hashtbl.t; (* vfn/512 -> page-table-page *)
  reverse : (Addr.pfn, (Addr.vfn, unit) Hashtbl.t) Hashtbl.t;
  (* [reverse] is an acceleration index maintained by [hw_set]; the
     authoritative state is always the serialized bytes in [mem]. *)
}

let create ~id ~mem ~alloc =
  { table_id = id;
    mem;
    alloc;
    groups = Hashtbl.create 64;
    reverse = Hashtbl.create 256 }

(* Entry encoding: bit 63 present, 62 writable, 61 executable, 60 c-bit,
   low 40 bits the target frame. *)
let encode proto =
  let open Int64 in
  let bit b pos = if b then shift_left 1L pos else 0L in
  logor (of_int (proto.frame land 0xFF_FFFF_FFFF))
    (logor (bit true 63)
       (logor (bit proto.writable 62)
          (logor (bit proto.executable 61) (bit proto.c_bit 60))))

let decode v =
  let open Int64 in
  let bit pos = not (equal (logand v (shift_left 1L pos)) 0L) in
  if not (bit 63) then None
  else
    Some
      { frame = to_int (logand v 0xFF_FFFF_FFFFL);
        writable = bit 62;
        executable = bit 61;
        c_bit = bit 60 }

let id t = t.table_id
let group_of vfn = vfn / entries_per_page
let slot_of vfn = vfn mod entries_per_page

let ensure_group t g =
  match Hashtbl.find_opt t.groups g with
  | Some pfn -> pfn
  | None ->
      let pfn = t.alloc () in
      Hashtbl.replace t.groups g pfn;
      pfn

let backing_frame_of t vfn = ensure_group t (group_of vfn)

let backing_frames t =
  Hashtbl.fold (fun _ pfn acc -> pfn :: acc) t.groups []
  |> List.sort_uniq compare

let lookup t vfn =
  match Hashtbl.find_opt t.groups (group_of vfn) with
  | None -> None
  | Some pfn ->
      decode (Bytes.get_int64_be (Physmem.page t.mem pfn) (slot_of vfn * 8))

let reverse_add t frame vfn =
  let set =
    match Hashtbl.find_opt t.reverse frame with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 4 in
        Hashtbl.replace t.reverse frame s;
        s
  in
  Hashtbl.replace set vfn ()

let reverse_remove t frame vfn =
  match Hashtbl.find_opt t.reverse frame with
  | None -> ()
  | Some s ->
      Hashtbl.remove s vfn;
      if Hashtbl.length s = 0 then Hashtbl.remove t.reverse frame

let hw_set t vfn proto =
  let pt_page = Physmem.page t.mem (ensure_group t (group_of vfn)) in
  (match decode (Bytes.get_int64_be pt_page (slot_of vfn * 8)) with
  | Some old -> reverse_remove t old.frame vfn
  | None -> ());
  match proto with
  | Some p ->
      Bytes.set_int64_be pt_page (slot_of vfn * 8) (encode p);
      reverse_add t p.frame vfn
  | None -> Bytes.set_int64_be pt_page (slot_of vfn * 8) 0L

let mapped_frames t =
  Hashtbl.fold
    (fun g pfn acc ->
      let page = Physmem.page t.mem pfn in
      let base = g * entries_per_page in
      let group_entries = ref [] in
      for slot = 0 to entries_per_page - 1 do
        match decode (Bytes.get_int64_be page (slot * 8)) with
        | Some p -> group_entries := (base + slot, p) :: !group_entries
        | None -> ()
      done;
      !group_entries @ acc)
    t.groups []

let frame_mapped t frame =
  match Hashtbl.find_opt t.reverse frame with
  | None -> []
  | Some set ->
      Hashtbl.fold
        (fun vfn () acc ->
          match lookup t vfn with
          | Some p when p.frame = frame -> (vfn, p) :: acc
          | Some _ | None -> acc)
        set []

let entry_count t = List.length (mapped_frames t)
