type proto = {
  frame : Addr.pfn;
  writable : bool;
  executable : bool;
  c_bit : bool;
}

let entries_per_page = Addr.page_size / 8

(* Small open-addressed int set (linear probing, power-of-two capacity,
   tombstones). The reverse index below churns one add + one remove per
   world switch (map/withdraw of the VMRUN page); a re-add lands back in
   its tombstoned slot, so the steady state allocates nothing — a stdlib
   [Hashtbl] would cons a bucket per add. *)
module Iset = struct
  type t = {
    mutable slots : int array;  (* -1 empty, -2 tombstone, else the member *)
    mutable live : int;
    mutable used : int;         (* live + tombstones *)
  }

  let create () = { slots = Array.make 8 (-1); live = 0; used = 0 }

  (* The probe loops are [while]s over locally unboxed refs, not local
     [let rec]s: a local recursive function closes over its environment
     and the native compiler heap-allocates that closure per call, which
     would put ~13 words on the minor heap for every map/unmap cycle. *)
  let index t v =
    let slots = t.slots in
    let mask = Array.length slots - 1 in
    let i = ref (((v * 0x9E3779B1) lsr 8) land mask) in
    while
      let s = Array.unsafe_get slots !i in
      s <> v && s <> -1
    do
      i := (!i + 1) land mask
    done;
    !i

  let rec add t v =
    (* Keep load below 1/2 counting tombstones so probes stay short. *)
    if 2 * (t.used + 1) > Array.length t.slots then begin
      let old = t.slots in
      t.slots <- Array.make (2 * Array.length old) (-1);
      t.used <- 0;
      t.live <- 0;
      Array.iter (fun s -> if s >= 0 then add t s) old;
      add t v
    end
    else begin
      let slots = t.slots in
      let mask = Array.length slots - 1 in
      let i = ref (((v * 0x9E3779B1) lsr 8) land mask) in
      let ins = ref (-1) in
      let running = ref true in
      while !running do
        let s = Array.unsafe_get slots !i in
        if s = v then running := false
        else if s = -1 then begin
          let slot = if !ins >= 0 then !ins else !i in
          Array.unsafe_set slots slot v;
          t.live <- t.live + 1;
          if slot = !i then t.used <- t.used + 1;
          running := false
        end
        else begin
          if s = -2 && !ins < 0 then ins := !i;
          i := (!i + 1) land mask
        end
      done
    end

  let remove t v =
    if t.live > 0 then begin
      let i = index t v in
      if Array.unsafe_get t.slots i = v then begin
        t.slots.(i) <- -2;
        t.live <- t.live - 1
      end
    end

  let iter f t =
    Array.iter (fun s -> if s >= 0 then f s) t.slots
end

type t = {
  table_id : int;
  mem : Physmem.t;
  alloc : unit -> Addr.pfn;
  groups : (int, Addr.pfn) Hashtbl.t; (* vfn/512 -> page-table-page *)
  (* One-entry front for [lookup_packed]: consecutive walks overwhelmingly
     hit the same page-table-page, and the hashed group lookup is the
     single most expensive step of the packed walk. [cg] is the cached
     group (-1 = empty), [cg_page] its backing page bytes. *)
  mutable cg : int;
  mutable cg_page : bytes;
  reverse : (Addr.pfn, Iset.t) Hashtbl.t;
  (* [reverse] is an acceleration index maintained by [hw_set]; the
     authoritative state is always the serialized bytes in [mem]. Emptied
     sets stay cached so the map/unmap cycle of a pinned frame never
     reallocates. *)
}

let create ~id ~mem ~alloc =
  { table_id = id;
    mem;
    alloc;
    groups = Hashtbl.create 64;
    cg = -1;
    cg_page = Bytes.empty;
    reverse = Hashtbl.create 256 }

(* Entry encoding: bit 63 present, 62 writable, 61 executable, 60 c-bit,
   low 40 bits the target frame. *)
let decode v =
  let open Int64 in
  let bit pos = not (equal (logand v (shift_left 1L pos)) 0L) in
  if not (bit 63) then None
  else
    Some
      { frame = to_int (logand v 0xFF_FFFF_FFFFL);
        writable = bit 62;
        executable = bit 61;
        c_bit = bit 60 }

let id t = t.table_id
let group_of vfn = vfn / entries_per_page
let slot_of vfn = vfn mod entries_per_page

let ensure_group t g =
  match Hashtbl.find t.groups g with
  | pfn -> pfn
  | exception Not_found ->
      let pfn = t.alloc () in
      Hashtbl.replace t.groups g pfn;
      t.cg <- -1;
      pfn

let backing_frame_of t vfn = ensure_group t (group_of vfn)

let backing_frames t =
  Hashtbl.fold (fun _ pfn acc -> pfn :: acc) t.groups []
  |> List.sort_uniq compare

(* ---- packed entries ---------------------------------------------------

   The allocation-free walk: an entry is returned as one tagged int
   ([-1] = not present, else frame lsl 3 | writable lsl 2 | executable
   lsl 1 | c_bit), read byte-by-byte from the backing page so no [int64]
   is ever boxed. The hot paths (MMU translate, exec checks, the type-3
   gate's PTE toggles) go through these; [lookup]/[hw_set] stay as the
   proto-typed wrappers. *)

let packed_absent = -1
let packed_make ~frame ~writable ~executable ~c_bit =
  (frame lsl 3)
  lor (if writable then 4 else 0)
  lor (if executable then 2 else 0)
  lor (if c_bit then 1 else 0)
let packed_frame p = p lsr 3
let packed_writable p = p land 4 <> 0
let packed_executable p = p land 2 <> 0
let packed_c_bit p = p land 1 <> 0

(* Big-endian entry bytes: byte 0 carries the four flag bits (63..60);
   bytes 3..7 carry the 40-bit frame. *)
let read_packed page off =
  let b0 = Char.code (Bytes.unsafe_get page off) in
  if b0 land 0x80 = 0 then packed_absent
  else begin
    let frame =
      (Char.code (Bytes.unsafe_get page (off + 3)) lsl 32)
      lor (Char.code (Bytes.unsafe_get page (off + 4)) lsl 24)
      lor (Char.code (Bytes.unsafe_get page (off + 5)) lsl 16)
      lor (Char.code (Bytes.unsafe_get page (off + 6)) lsl 8)
      lor Char.code (Bytes.unsafe_get page (off + 7))
    in
    (frame lsl 3) lor ((b0 lsr 4) land 0x7)
  end

let write_packed page off p =
  if p = packed_absent then Bytes.fill page off 8 '\000'
  else begin
    let frame = packed_frame p in
    Bytes.unsafe_set page off (Char.unsafe_chr (0x80 lor ((p land 0x7) lsl 4)));
    Bytes.unsafe_set page (off + 1) '\000';
    Bytes.unsafe_set page (off + 2) '\000';
    Bytes.unsafe_set page (off + 3) (Char.unsafe_chr ((frame lsr 32) land 0xff));
    Bytes.unsafe_set page (off + 4) (Char.unsafe_chr ((frame lsr 24) land 0xff));
    Bytes.unsafe_set page (off + 5) (Char.unsafe_chr ((frame lsr 16) land 0xff));
    Bytes.unsafe_set page (off + 6) (Char.unsafe_chr ((frame lsr 8) land 0xff));
    Bytes.unsafe_set page (off + 7) (Char.unsafe_chr (frame land 0xff))
  end

let lookup_packed t vfn =
  let g = group_of vfn in
  if g = t.cg then read_packed t.cg_page (slot_of vfn * 8)
  else
    match Hashtbl.find t.groups g with
    | exception Not_found -> packed_absent
    | pfn ->
        let page = Physmem.page t.mem pfn in
        t.cg <- g;
        t.cg_page <- page;
        read_packed page (slot_of vfn * 8)

let lookup t vfn =
  let p = lookup_packed t vfn in
  if p = packed_absent then None
  else
    Some
      { frame = packed_frame p;
        writable = packed_writable p;
        executable = packed_executable p;
        c_bit = packed_c_bit p }

let reverse_set t frame =
  match Hashtbl.find t.reverse frame with
  | s -> s
  | exception Not_found ->
      let s = Iset.create () in
      Hashtbl.replace t.reverse frame s;
      s

let reverse_remove t frame vfn =
  match Hashtbl.find t.reverse frame with
  | s -> Iset.remove s vfn
  | exception Not_found -> ()

let hw_set_packed t vfn p =
  let pt_page = Physmem.page t.mem (ensure_group t (group_of vfn)) in
  let off = slot_of vfn * 8 in
  let old = read_packed pt_page off in
  if old <> packed_absent then reverse_remove t (packed_frame old) vfn;
  write_packed pt_page off p;
  if p <> packed_absent then Iset.add (reverse_set t (packed_frame p)) vfn

let hw_set t vfn proto =
  hw_set_packed t vfn
    (match proto with
    | None -> packed_absent
    | Some p ->
        packed_make ~frame:p.frame ~writable:p.writable ~executable:p.executable
          ~c_bit:p.c_bit)

let mapped_frames t =
  Hashtbl.fold
    (fun g pfn acc ->
      let page = Physmem.page t.mem pfn in
      let base = g * entries_per_page in
      let group_entries = ref [] in
      for slot = 0 to entries_per_page - 1 do
        match decode (Bytes.get_int64_be page (slot * 8)) with
        | Some p -> group_entries := (base + slot, p) :: !group_entries
        | None -> ()
      done;
      !group_entries @ acc)
    t.groups []

let frame_is_mapped t frame =
  match Hashtbl.find t.reverse frame with
  | s -> s.Iset.live > 0
  | exception Not_found -> false

let frame_mapped_writable t frame =
  match Hashtbl.find t.reverse frame with
  | exception Not_found -> false
  | s ->
      let found = ref false in
      Iset.iter
        (fun vfn ->
          if not !found then
            let p = lookup_packed t vfn in
            if p <> packed_absent && packed_frame p = frame && packed_writable p then
              found := true)
        s;
      !found

let frame_mapped t frame =
  match Hashtbl.find_opt t.reverse frame with
  | None -> []
  | Some set ->
      let acc = ref [] in
      Iset.iter
        (fun vfn ->
          match lookup t vfn with
          | Some p when p.frame = frame -> acc := (vfn, p) :: !acc
          | Some _ | None -> ())
        set;
      !acc

let entry_count t = List.length (mapped_frames t)
