type pfn = int
type gfn = int
type vfn = int

let page_shift = 12
let page_size = 1 lsl page_shift
let block_size = 16
let blocks_per_page = page_size / block_size

let addr_of frame off = (frame lsl page_shift) lor off
let frame_of addr = addr lsr page_shift
let offset_of addr = addr land (page_size - 1)

let pp_frame fmt frame = Format.fprintf fmt "0x%05x" frame
