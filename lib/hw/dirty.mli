(** Per-domain dirty-page bitmap, the hardware hook live migration's
    pre-copy rounds are driven by.

    The MMU guest-write path marks the guest-physical frame of every store
    while tracking is on (the Xen layer's [Domain.write] is the hook point);
    the migration sender {!drain}s the set between rounds to decide what to
    resend. Tracking is off by default and {!mark} is a no-op then, so
    non-migrating guests pay one boolean test per store.

    Ownership: the bitmap lives inside the domain record, so it is owned by
    whichever fleet job owns the domain's machine — never shared across
    pool workers (see SCALING.md). *)

type t

val create : unit -> t
(** Fresh bitmap, tracking off. Grows on demand; no fixed guest size. *)

val start : t -> unit
(** Clear the bitmap and start recording guest stores. *)

val stop : t -> unit
(** Stop recording (the final stop-and-copy pause). The recorded set stays
    readable until the next {!start}. *)

val tracking : t -> bool

val mark : t -> int -> unit
(** [mark t gfn] records a store to guest-physical frame [gfn]. No-op when
    tracking is off or [gfn] is negative. *)

val count : t -> int
(** Number of distinct dirty frames currently recorded. *)

val drain : t -> int list
(** The dirty frames in ascending order; clears the bitmap so the next
    round accumulates afresh. *)
