type op =
  | Mov_cr0
  | Mov_cr3
  | Mov_cr4
  | Wrmsr
  | Vmrun
  | Lgdt
  | Lidt

let op_to_string = function
  | Mov_cr0 -> "mov-cr0"
  | Mov_cr3 -> "mov-cr3"
  | Mov_cr4 -> "mov-cr4"
  | Wrmsr -> "wrmsr"
  | Vmrun -> "vmrun"
  | Lgdt -> "lgdt"
  | Lidt -> "lidt"

let all_ops = [ Mov_cr0; Mov_cr3; Mov_cr4; Wrmsr; Vmrun; Lgdt; Lidt ]

type instance = {
  page : Addr.vfn;
  handler : int64 -> (unit, string) result;
}

type registry = {
  mutable placed : (op * instance) list;
  ledger : Cost.ledger;
}

let create ledger = { placed = []; ledger }

let place t op ~page ~handler =
  t.placed <- (op, { page; handler }) :: t.placed

let scrub t op ~keep =
  t.placed <-
    List.filter
      (fun (o, inst) -> (not (o = op)) || inst.page = keep)
      t.placed

let instances t op =
  List.filter_map (fun (o, inst) -> if o = op then Some inst.page else None) t.placed

let monopolized t op = List.length (instances t op) = 1

(* One pass over the placement list, no intermediate list: charge the
   fetch when the first instance of [op] is seen (same single charge the
   filter-then-find version made), dispatch to the first executable one. *)
let c_insn_fetch = Cost.intern "insn-fetch"

(* Module-level so the dispatch loop is closure-free: a guest re-entry
   (VMRUN) runs this once per world switch. *)
let rec exec_scan t ~exec_ok op value l seen =
  match l with
  | [] ->
      if seen then
        Error
          (Printf.sprintf "#PF(fetch): every %s instance lives in a non-executable page"
             (op_to_string op))
      else
        Error
          (Printf.sprintf "#UD: no %s instruction exists in the code region"
             (op_to_string op))
  | (o, inst) :: rest ->
      (* [op] values are constant constructors, so physical equality is
         exact and skips the generic compare call seven times per scan. *)
      if o == op then begin
        if not seen then Cost.charge_id t.ledger c_insn_fetch 1;
        if exec_ok inst.page then inst.handler value
        else exec_scan t ~exec_ok op value rest true
      end
      else exec_scan t ~exec_ok op value rest seen

let execute t ~exec_ok op value = exec_scan t ~exec_ok op value t.placed false

let inject t ~wx_ok op ~page ~handler =
  if wx_ok page then begin
    place t op ~page ~handler;
    Ok ()
  end
  else
    Error
      (Printf.sprintf "cannot inject %s at page 0x%x: no writable+executable mapping"
         (op_to_string op) page)
