type op =
  | Mov_cr0
  | Mov_cr3
  | Mov_cr4
  | Wrmsr
  | Vmrun
  | Lgdt
  | Lidt

let op_to_string = function
  | Mov_cr0 -> "mov-cr0"
  | Mov_cr3 -> "mov-cr3"
  | Mov_cr4 -> "mov-cr4"
  | Wrmsr -> "wrmsr"
  | Vmrun -> "vmrun"
  | Lgdt -> "lgdt"
  | Lidt -> "lidt"

let all_ops = [ Mov_cr0; Mov_cr3; Mov_cr4; Wrmsr; Vmrun; Lgdt; Lidt ]

type instance = {
  page : Addr.vfn;
  handler : int64 -> (unit, string) result;
}

type registry = {
  mutable placed : (op * instance) list;
  ledger : Cost.ledger;
}

let create ledger = { placed = []; ledger }

let place t op ~page ~handler =
  t.placed <- (op, { page; handler }) :: t.placed

let scrub t op ~keep =
  t.placed <-
    List.filter
      (fun (o, inst) -> (not (o = op)) || inst.page = keep)
      t.placed

let instances t op =
  List.filter_map (fun (o, inst) -> if o = op then Some inst.page else None) t.placed

let monopolized t op = List.length (instances t op) = 1

let execute t ~exec_ok op value =
  let candidates = List.filter (fun (o, _) -> o = op) t.placed in
  match candidates with
  | [] -> Error (Printf.sprintf "#UD: no %s instruction exists in the code region" (op_to_string op))
  | _ -> (
      Cost.charge t.ledger "insn-fetch" 1;
      match List.find_opt (fun (_, inst) -> exec_ok inst.page) candidates with
      | None ->
          Error
            (Printf.sprintf "#PF(fetch): every %s instance lives in a non-executable page"
               (op_to_string op))
      | Some (_, inst) -> inst.handler value)

let inject t ~wx_ok op ~page ~handler =
  if wx_ok page then begin
    place t op ~page ~handler;
    Ok ()
  end
  else
    Error
      (Printf.sprintf "cannot inject %s at page 0x%x: no writable+executable mapping"
         (op_to_string op) page)
