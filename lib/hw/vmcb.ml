type exit_reason =
  | Cpuid
  | Hlt
  | Vmmcall
  | Npf
  | Ioio
  | Msr
  | Intr
  | Shutdown

let exit_reason_to_int64 = function
  | Cpuid -> 0x72L
  | Hlt -> 0x78L
  | Vmmcall -> 0x81L
  | Npf -> 0x400L
  | Ioio -> 0x7bL
  | Msr -> 0x7cL
  | Intr -> 0x60L
  | Shutdown -> 0x7fL

let exit_reason_of_int64 = function
  | 0x72L -> Some Cpuid
  | 0x78L -> Some Hlt
  | 0x81L -> Some Vmmcall
  | 0x400L -> Some Npf
  | 0x7bL -> Some Ioio
  | 0x7cL -> Some Msr
  | 0x60L -> Some Intr
  | 0x7fL -> Some Shutdown
  | _ -> None

let exit_reason_to_string = function
  | Cpuid -> "CPUID"
  | Hlt -> "HLT"
  | Vmmcall -> "VMMCALL"
  | Npf -> "NPF"
  | Ioio -> "IOIO"
  | Msr -> "MSR"
  | Intr -> "INTR"
  | Shutdown -> "SHUTDOWN"

type field =
  | Rip | Rsp | Rax | Cr0 | Cr3 | Cr4 | Efer
  | Exit_reason | Exit_info1 | Exit_info2
  | Intercepts | Asid | Sev_enabled | Np_enabled | Np_cr3

let fields =
  [ Rip; Rsp; Rax; Cr0; Cr3; Cr4; Efer;
    Exit_reason; Exit_info1; Exit_info2;
    Intercepts; Asid; Sev_enabled; Np_enabled; Np_cr3 ]

let save_area = [ Rip; Rsp; Rax; Cr0; Cr3; Cr4; Efer ]

let control_area =
  [ Exit_reason; Exit_info1; Exit_info2; Intercepts; Asid; Sev_enabled; Np_enabled; Np_cr3 ]

let field_to_string = function
  | Rip -> "rip" | Rsp -> "rsp" | Rax -> "rax"
  | Cr0 -> "cr0" | Cr3 -> "cr3" | Cr4 -> "cr4" | Efer -> "efer"
  | Exit_reason -> "exit_reason" | Exit_info1 -> "exit_info1" | Exit_info2 -> "exit_info2"
  | Intercepts -> "intercepts" | Asid -> "asid"
  | Sev_enabled -> "sev_enabled" | Np_enabled -> "np_enabled" | Np_cr3 -> "np_cr3"

let index = function
  | Rip -> 0 | Rsp -> 1 | Rax -> 2 | Cr0 -> 3 | Cr3 -> 4 | Cr4 -> 5 | Efer -> 6
  | Exit_reason -> 7 | Exit_info1 -> 8 | Exit_info2 -> 9
  | Intercepts -> 10 | Asid -> 11 | Sev_enabled -> 12 | Np_enabled -> 13 | Np_cr3 -> 14

type t = int64 array

let nr_fields = 15
let fields_a = Array.of_list fields
let field_of_index i = fields_a.(i)

let create () = Array.make 15 0L
let get t f = t.(index f)
let set t f v = t.(index f) <- v
let get_i (t : t) i = t.(i)
let set_i (t : t) i v = t.(i) <- v
let unsafe_get_i (t : t) i = Array.unsafe_get t i
let unsafe_set_i (t : t) i v = Array.unsafe_set t i v
let snapshot_into (t : t) dst = Array.blit t 0 dst 0 15
let copy t = Array.copy t
let blit ~src ~dst = Array.blit src 0 dst 0 15

let diff a b = List.filter (fun f -> not (Int64.equal (get a f) (get b f))) fields

let exit_reason t = exit_reason_of_int64 (get t Exit_reason)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun f -> Format.fprintf fmt "%-12s 0x%Lx@," (field_to_string f) (get t f)) fields;
  Format.fprintf fmt "@]"
