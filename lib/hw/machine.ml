module Rng = Fidelius_crypto.Rng

(* Charge sites, interned once. *)
let c_dma = Cost.intern "dma"

type t = {
  mem : Physmem.t;
  ctrl : Memctrl.t;
  tlb : Tlb.t;
  cache : Cache.t;
  ledger : Cost.ledger;
  costs : Cost.table;
  rng : Rng.t;
  cpu : Cpu.t;
  insns : Insn.registry;
  mutable free_frames : Addr.pfn list;
  mutable next_table_id : int;
  mutable enforce_paging : bool;
  mutable iommu : (Addr.pfn -> bool) option;
  mmu_span : bytes;
  mmu_line : bytes;
}

let default_nr_frames = 8192

let create ?(nr_frames = default_nr_frames) ?mem ~seed () =
  let ledger = Cost.ledger () in
  let rng = Rng.create seed in
  let mem =
    match mem with
    | None -> Physmem.create ~nr_frames
    | Some m ->
        (* Arena reuse: a recycled backing must behave exactly like a
           fresh one, so its geometry must match and its contents are
           zeroed before anything reads them. *)
        if Physmem.nr_frames m <> nr_frames then
          invalid_arg
            (Printf.sprintf "Machine.create: reused backing has %d frames, expected %d"
               (Physmem.nr_frames m) nr_frames);
        Physmem.reset m;
        m
  in
  (* Frame 0 stays reserved so that "frame 0" can never be a valid mapping
     target, catching uninitialized-entry bugs early. *)
  let free = List.init (nr_frames - 1) (fun i -> nr_frames - 1 - i) in
  { mem;
    ctrl = Memctrl.create mem ledger rng;
    tlb = Tlb.create ledger;
    cache = Cache.create ledger;
    ledger;
    costs = Cost.default;
    rng;
    cpu = Cpu.create ();
    insns = Insn.create ledger;
    free_frames = free;
    next_table_id = 1;
    enforce_paging = false;
    iommu = None;
    mmu_span = Bytes.create Addr.page_size;
    mmu_line = Bytes.create Addr.block_size }

let alloc_frame t =
  match t.free_frames with
  | [] -> failwith "Machine.alloc_frame: out of physical memory"
  | pfn :: rest ->
      t.free_frames <- rest;
      pfn

let alloc_frames t n = List.init n (fun _ -> alloc_frame t)

let free_frame t pfn =
  (* Scrub on free so stale secrets never leak through reallocation. *)
  Physmem.write_raw t.mem pfn ~off:0 (Bytes.make Addr.page_size '\000');
  Cache.invalidate_page t.cache pfn;
  t.free_frames <- pfn :: t.free_frames

let frames_free t = List.length t.free_frames

let new_table t =
  let id = t.next_table_id in
  t.next_table_id <- id + 1;
  Pagetable.create ~id ~mem:t.mem ~alloc:(fun () -> alloc_frame t)

let dma_allowed t pfn =
  match t.iommu with None -> true | Some ok -> ok pfn

let dma_write t pfn ~off data =
  if dma_allowed t pfn then begin
    Cost.charge_id t.ledger c_dma t.costs.Cost.dram_access;
    Physmem.write_raw t.mem pfn ~off data;
    Ok ()
  end
  else Error (Printf.sprintf "IOMMU: DMA write to frame 0x%x denied" pfn)

let dma_read t pfn ~off ~len =
  if dma_allowed t pfn then begin
    Cost.charge_id t.ledger c_dma t.costs.Cost.dram_access;
    Ok (Physmem.read_raw t.mem pfn ~off ~len)
  end
  else Error (Printf.sprintf "IOMMU: DMA read from frame 0x%x denied" pfn)

let set_iommu t filter = t.iommu <- filter
