(* Per-domain dirty-page bitmap for live-migration pre-copy rounds. *)

type t = {
  mutable bits : Bytes.t;
  mutable tracking : bool;
}

let create () = { bits = Bytes.create 8; tracking = false }

let start t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.tracking <- true

let stop t = t.tracking <- false
let tracking t = t.tracking

let ensure t gfn =
  let need = (gfn / 8) + 1 in
  if Bytes.length t.bits < need then begin
    let grown = Bytes.make (max need (2 * Bytes.length t.bits)) '\000' in
    Bytes.blit t.bits 0 grown 0 (Bytes.length t.bits);
    t.bits <- grown
  end

let mark t gfn =
  if t.tracking && gfn >= 0 then begin
    ensure t gfn;
    let byte = gfn / 8 and bit = gfn mod 8 in
    Bytes.set t.bits byte (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl bit)))
  end

let count t =
  let n = ref 0 in
  Bytes.iter
    (fun c ->
      let c = Char.code c in
      for bit = 0 to 7 do
        if c land (1 lsl bit) <> 0 then incr n
      done)
    t.bits;
  !n

let drain t =
  let acc = ref [] in
  for byte = Bytes.length t.bits - 1 downto 0 do
    let c = Char.code (Bytes.get t.bits byte) in
    if c <> 0 then
      for bit = 7 downto 0 do
        if c land (1 lsl bit) <> 0 then acc := ((byte * 8) + bit) :: !acc
      done
  done;
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  !acc
