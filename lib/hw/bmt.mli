(** Bonsai Merkle Tree memory-integrity engine — the paper's first hardware
    suggestion (Section 8: "Hardware-based integrity checking... can be
    addressed by integrating a Bonsai Merkle Tree to enable hardware-based
    integrity in the secure processor").

    A binary hash tree over a chosen set of physical frames. Leaf hashes
    bind the frame number to its contents; the root lives inside the secure
    processor where software cannot reach it. A verified read recomputes the
    leaf and its path: any physical tampering — Rowhammer flips, DMA
    overwrites, ciphertext replay-in-place — is detected rather than
    silently consumed, closing the integrity gap the paper concedes for
    plain SEV ("Fidelius cannot strictly eradicate this malevolent bit
    flipping").

    Verification charges the cost model per hash recomputed, so the
    integrity ablation (`bench/main.exe ablate`) can weigh the protection
    against its overhead. *)

type t

val create : Machine.t -> frames:Addr.pfn list -> t
(** Build the tree over [frames] (their *current* contents become the
    trusted state). Raises [Invalid_argument] on an empty list. *)

val root : t -> bytes
(** The 32-byte root — conceptually register state of the secure processor,
    exposed read-only for attestation. *)

val covered : t -> Addr.pfn -> bool

val verify : t -> Addr.pfn -> (unit, string) result
(** Recompute the frame's leaf and path and compare against the root.
    [Error] names the frame on mismatch. Frames outside the tree fail
    closed. *)

val verify_all : t -> (unit, string) result
(** Whole-tree sweep (boot-time or attestation-time check). *)

val verify_fetched : t -> Addr.pfn -> data:bytes -> (unit, string) result
(** Inline check of the page [data] a fetch actually returned: hash it and
    compare against the stored level-0 digest for [pfn] — O(1) hashes per
    fetch, the way real BMT engines check a fill. Unlike {!verify} this
    catches misrouted fetches (address-aliasing/remap faults) where DRAM
    still holds pristine bytes but the bus delivered another frame's.

    {b Trust argument.} Comparing against the stored leaf is as strong as
    rewalking to the root: the leaf digests, interior nodes and root are
    the engine's own on-die state, mutated only through {!create} /
    {!update} / {!update_many} — software and physical attack channels
    (DMA, Rowhammer, bus interposers) reach DRAM but never this state. A
    fetch that mismatches its trusted leaf is detected directly; a fetch
    that matches it is exactly what the root already commits to, since
    every interior node was computed by the engine from these leaves under
    a collision-resistant hash. The root walk only adds value if interior
    state could be corrupted independently — a channel outside the threat
    model, and one {!verify}/{!verify_all} still cover for attestation.

    Modeled as the engine's parallel verification pipeline: charges no
    cycles and does not count toward {!hashes_performed} (it has its own
    {!fetch_hashes_performed} counter), so enabling it leaves the
    ablation's explicit verify costs untouched. *)

val update : t -> Addr.pfn -> unit
(** Recompute the path after an *authorized* write to the frame (the secure
    processor witnesses legitimate writes; attackers cannot call this —
    physical channels bypass the CPU entirely). Equivalent to
    [update_many t [pfn]]. *)

val update_many : t -> Addr.pfn list -> unit
(** Batched {!update} after a multi-frame write: refreshes every dirty
    leaf, then rebuilds each affected interior node exactly once per batch
    — shared ancestors are hashed once, not once per frame, so a k-page
    contiguous write costs k leaf hashes plus the union of the k paths
    instead of k full paths. The resulting tree is bit-identical to
    sequential {!update}s; duplicates and uncovered frames are ignored. *)

val hashes_performed : t -> int
(** Total charged leaf+node hash computations so far, for the ablation. *)

val fetch_hashes_performed : t -> int
(** Total (uncharged) inline fetch-check hashes — exactly one per
    {!verify_fetched} call on a covered frame, regardless of tree size. *)
