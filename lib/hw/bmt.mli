(** Bonsai Merkle Tree memory-integrity engine — the paper's first hardware
    suggestion (Section 8: "Hardware-based integrity checking... can be
    addressed by integrating a Bonsai Merkle Tree to enable hardware-based
    integrity in the secure processor").

    A binary hash tree over a chosen set of physical frames. Leaf hashes
    bind the frame number to its contents; the root lives inside the secure
    processor where software cannot reach it. A verified read recomputes the
    leaf and its path: any physical tampering — Rowhammer flips, DMA
    overwrites, ciphertext replay-in-place — is detected rather than
    silently consumed, closing the integrity gap the paper concedes for
    plain SEV ("Fidelius cannot strictly eradicate this malevolent bit
    flipping").

    Verification charges the cost model per hash recomputed, so the
    integrity ablation (`bench/main.exe ablate`) can weigh the protection
    against its overhead. *)

type t

val create : Machine.t -> frames:Addr.pfn list -> t
(** Build the tree over [frames] (their *current* contents become the
    trusted state). Raises [Invalid_argument] on an empty list. *)

val root : t -> bytes
(** The 32-byte root — conceptually register state of the secure processor,
    exposed read-only for attestation. *)

val covered : t -> Addr.pfn -> bool

val verify : t -> Addr.pfn -> (unit, string) result
(** Recompute the frame's leaf and path and compare against the root.
    [Error] names the frame on mismatch. Frames outside the tree fail
    closed. *)

val verify_all : t -> (unit, string) result
(** Whole-tree sweep (boot-time or attestation-time check). *)

val verify_fetched : t -> Addr.pfn -> data:bytes -> (unit, string) result
(** Inline check of the page [data] a fetch actually returned against the
    tree path for [pfn]. Unlike {!verify} this catches misrouted fetches
    (address-aliasing/remap faults) where DRAM still holds pristine bytes
    but the bus delivered another frame's. Modeled as the engine's
    parallel verification pipeline: charges no cycles and does not count
    toward {!hashes_performed}, so enabling it leaves the ablation's
    explicit verify costs untouched. *)

val update : t -> Addr.pfn -> unit
(** Recompute the path after an *authorized* write to the frame (the secure
    processor witnesses legitimate writes; attackers cannot call this —
    physical channels bypass the CPU entirely). *)

val hashes_performed : t -> int
(** Total leaf+node hash computations so far, for the ablation. *)
