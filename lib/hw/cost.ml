module Trace = Fidelius_obs.Trace

type table = {
  dram_access : int;
  enc_extra : int;
  cache_hit : int;
  cacheline_write : int;
  tlb_flush_full : int;
  tlb_flush_entry : int;
  tlb_miss_walk : int;
  wp_toggle : int;
  irq_mask_toggle : int;
  stack_switch : int;
  sanity_check : int;
  vmexit : int;
  vmrun : int;
  vmcb_field_copy : int;
  hypercall_base : int;
  pit_lookup : int;
  git_lookup : int;
  aesni_block : int;
  sev_engine_block : int;
  sw_aes_block : int;
  memcpy_block : int;
  io_sector : int;
  event_channel : int;
  firmware_cmd : int;
  firmware_page : int;
  gate1 : int;
  gate2 : int;
  gate3 : int;
  shadow_roundtrip : int;
}

(* Calibration notes.
   - Gates: type 1 = wp_toggle*2 + irq_mask_toggle + stack_switch + sanity
     = 120 + 36 + 60 + 90 = 306 (paper: 306).
   - Type 2 = sanity-only checking loop = 16 (paper: 16).
   - Type 3 = pte write (cacheline_write) + tlb_flush_entry + sanity + map
     bookkeeping = 339 with flush 128 and write <2 (paper: 339/128/<2).
   - Shadow+check round trip of a void hypercall = vmcb copy+mask+compare
     at both boundaries, paper: 661; we charge vmcb_field_copy per field
     over the shadowed field set, sized to land there.
   - The 512 MB copy micro-benchmark: AES-NI adds ~11.5% over memcpy,
     SEV engine ~8.7%, software AES > 20x (paper Section 7.2). *)
let default = {
  dram_access = 160;
  enc_extra = 40;
  cache_hit = 4;
  cacheline_write = 1;
  tlb_flush_full = 1200;
  tlb_flush_entry = 128;
  tlb_miss_walk = 80;
  wp_toggle = 60;
  irq_mask_toggle = 36;
  stack_switch = 60;
  sanity_check = 16;
  vmexit = 1000;
  vmrun = 800;
  vmcb_field_copy = 7;
  hypercall_base = 150;
  pit_lookup = 24;
  git_lookup = 18;
  aesni_block = 1115;
  sev_engine_block = 1087;
  sw_aes_block = 21000;
  memcpy_block = 1000;
  io_sector = 12000;
  event_channel = 400;
  firmware_cmd = 5000;
  firmware_page = 2500;
  gate1 = 306;
  gate2 = 16;
  gate3 = 339;
  shadow_roundtrip = 661;
}

(* ---- category interning ----------------------------------------------

   Category labels are resolved once to dense int ids, so the per-access
   [charge] is two array adds instead of string-hashed table lookups. The
   registry is global (labels mean the same thing in every ledger) and
   effectively frozen after module init: the mutex only matters for the
   rare dynamically-built label, and readers get the label array through
   an atomic so fleet worker domains always see a fully-published copy. *)

type id = int

let registry_lock = Mutex.create ()
let registry : (string, int) Hashtbl.t = Hashtbl.create 64
let labels : string array Atomic.t = Atomic.make [||]

let intern name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some id -> id
      | None ->
          let id = Hashtbl.length registry in
          Hashtbl.add registry name id;
          let old = Atomic.get labels in
          let arr =
            if id < Array.length old then old
            else begin
              let a = Array.make (max 16 (2 * (id + 1))) "" in
              Array.blit old 0 a 0 (Array.length old);
              a
            end
          in
          arr.(id) <- name;
          Atomic.set labels arr;
          id)

let id_label id = (Atomic.get labels).(id)

let nr_ids () = Mutex.protect registry_lock (fun () -> Hashtbl.length registry)

(* ---- ledger ----------------------------------------------------------

   Accumulators are flat arrays indexed by category id. [touched] keeps
   the exact reporting semantics of the old string-keyed tables: a charge
   of 0 cycles still makes the category (or the scope's category row)
   visible in listings. Scope frames are persistent per label — resolved
   once per [with_scope] entry, then the innermost frame is a cached
   pointer the hot [charge] adds through — and the stack itself is a
   preallocated array so entering a scope does not allocate. *)

type frame = {
  fr_label : string;
  mutable fr_total : int;
  mutable fr_counts : int array;
  mutable fr_touched : Bytes.t;
}

type ledger = {
  mutable cycles : int;
  mutable counts : int array;
  mutable touched : Bytes.t;
  mutable frames : (string, frame) Hashtbl.t;
  mutable stack : frame array;
  mutable depth : int;
  mutable top : frame;  (* valid iff depth > 0 *)
}

let root_scope = "(root)"

let new_frame label n =
  { fr_label = label;
    fr_total = 0;
    fr_counts = Array.make n 0;
    fr_touched = Bytes.make n '\000' }

let ledger () =
  let n = max 16 (nr_ids ()) in
  let dummy = new_frame "" 0 in
  { cycles = 0;
    counts = Array.make n 0;
    touched = Bytes.make n '\000';
    frames = Hashtbl.create 8;
    stack = Array.make 8 dummy;
    depth = 0;
    top = dummy }

let grow_counts counts id =
  let a = Array.make (max 16 (2 * (id + 1))) 0 in
  Array.blit counts 0 a 0 (Array.length counts);
  a

let grow_touched touched id =
  let b = Bytes.make (max 16 (2 * (id + 1))) '\000' in
  Bytes.blit touched 0 b 0 (Bytes.length touched);
  b

let negative_charge id n =
  invalid_arg (Printf.sprintf "Cost.charge: negative charge %d to %S" n (id_label id))

let charge_id l id n =
  if n < 0 then negative_charge id n;
  if id >= Array.length l.counts then begin
    l.counts <- grow_counts l.counts id;
    l.touched <- grow_touched l.touched id
  end;
  l.cycles <- l.cycles + n;
  Array.unsafe_set l.counts id (Array.unsafe_get l.counts id + n);
  Bytes.unsafe_set l.touched id '\001';
  if l.depth > 0 then begin
    let fr = l.top in
    fr.fr_total <- fr.fr_total + n;
    if id >= Array.length fr.fr_counts then begin
      fr.fr_counts <- grow_counts fr.fr_counts id;
      fr.fr_touched <- grow_touched fr.fr_touched id
    end;
    Array.unsafe_set fr.fr_counts id (Array.unsafe_get fr.fr_counts id + n);
    Bytes.unsafe_set fr.fr_touched id '\001'
  end

let charge l cat n =
  if n < 0 then
    invalid_arg (Printf.sprintf "Cost.charge: negative charge %d to %S" n cat);
  charge_id l (intern cat) n

let frame_of l scope =
  match Hashtbl.find l.frames scope with
  | fr -> fr
  | exception Not_found ->
      let fr = new_frame scope (Array.length l.counts) in
      Hashtbl.add l.frames scope fr;
      fr

let pop_scope l =
  (if l.depth > 0 then begin
     l.depth <- l.depth - 1;
     if l.depth > 0 then l.top <- Array.unsafe_get l.stack (l.depth - 1)
   end);
  if Trace.enabled () then Trace.pop_scope ()

(* Closure-free entry/exit pair for call sites on the world-switch fast
   path: [with_scope l s (fun () -> body)] allocates the closure per call,
   while [scope_enter l s; body; scope_exit l] allocates nothing once the
   scope's frame exists. Callers owe the same exception discipline
   [with_scope] provides. *)
let scope_enter l scope =
  if String.equal scope root_scope then
    invalid_arg "Cost.with_scope: (root) is reserved";
  let fr = frame_of l scope in
  if l.depth >= Array.length l.stack then begin
    let a = Array.make (2 * Array.length l.stack) fr in
    Array.blit l.stack 0 a 0 (Array.length l.stack);
    l.stack <- a
  end;
  Array.unsafe_set l.stack l.depth fr;
  l.depth <- l.depth + 1;
  l.top <- fr;
  if Trace.enabled () then Trace.push_scope scope

let scope_exit = pop_scope

let with_scope l scope f =
  scope_enter l scope;
  match f () with
  | v ->
      pop_scope l;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      pop_scope l;
      Printexc.raise_with_backtrace e bt

let total l = l.cycles

let category l cat =
  match Mutex.protect registry_lock (fun () -> Hashtbl.find_opt registry cat) with
  | None -> 0
  | Some id -> if id < Array.length l.counts then l.counts.(id) else 0

(* Descending by cycles; ties broken on the label so the order never
   depends on hash-table iteration. *)
let sort_counts counts =
  List.sort
    (fun (ka, a) (kb, b) -> if a <> b then compare b a else compare ka kb)
    counts

(* Rebuild a (label, cycles) listing from a flat accumulator, visiting
   only the touched ids — exactly the rows the old string-keyed table
   held. Report-time only. *)
let rows counts touched =
  let acc = ref [] in
  for id = Array.length counts - 1 downto 0 do
    if id < Bytes.length touched && Bytes.get touched id = '\001' then
      acc := (id_label id, counts.(id)) :: !acc
  done;
  !acc

let categories l = sort_counts (rows l.counts l.touched)

let scoped_sum l = Hashtbl.fold (fun _ fr acc -> acc + fr.fr_total) l.frames 0

let scopes l =
  let named = Hashtbl.fold (fun k fr acc -> (k, fr.fr_total) :: acc) l.frames [] in
  let rest = l.cycles - scoped_sum l in
  let all = if rest > 0 || named = [] then (root_scope, rest) :: named else named in
  sort_counts all

let scope_total l scope =
  if scope = root_scope then l.cycles - scoped_sum l
  else match Hashtbl.find_opt l.frames scope with Some fr -> fr.fr_total | None -> 0

let scope_categories l scope =
  if scope = root_scope then begin
    (* Whatever of each category is not accounted to a named scope. *)
    let residue = Array.copy l.counts in
    Hashtbl.iter
      (fun _ fr ->
        Array.iteri
          (fun id v -> if id < Array.length residue then residue.(id) <- residue.(id) - v)
          fr.fr_counts)
      l.frames;
    let acc = ref [] in
    for id = Array.length residue - 1 downto 0 do
      if
        id < Bytes.length l.touched
        && Bytes.get l.touched id = '\001'
        && residue.(id) > 0
      then acc := (id_label id, residue.(id)) :: !acc
    done;
    sort_counts !acc
  end
  else
    match Hashtbl.find_opt l.frames scope with
    | None -> []
    | Some fr -> sort_counts (rows fr.fr_counts fr.fr_touched)

let reset l =
  l.cycles <- 0;
  Array.fill l.counts 0 (Array.length l.counts) 0;
  Bytes.fill l.touched 0 (Bytes.length l.touched) '\000';
  (* Frames still referenced by an active [with_scope] keep accumulating
     into orphaned storage, exactly as the old string-keyed tables did
     after a mid-scope reset. *)
  l.frames <- Hashtbl.create 8

let snapshot = total

let pp fmt l =
  Format.fprintf fmt "@[<v>total: %d cycles" l.cycles;
  List.iter (fun (k, v) -> Format.fprintf fmt "@,  %-24s %12d" k v) (categories l);
  Format.fprintf fmt "@]"
