module Trace = Fidelius_obs.Trace

type table = {
  dram_access : int;
  enc_extra : int;
  cache_hit : int;
  cacheline_write : int;
  tlb_flush_full : int;
  tlb_flush_entry : int;
  tlb_miss_walk : int;
  wp_toggle : int;
  irq_mask_toggle : int;
  stack_switch : int;
  sanity_check : int;
  vmexit : int;
  vmrun : int;
  vmcb_field_copy : int;
  hypercall_base : int;
  pit_lookup : int;
  git_lookup : int;
  aesni_block : int;
  sev_engine_block : int;
  sw_aes_block : int;
  memcpy_block : int;
  io_sector : int;
  event_channel : int;
  firmware_cmd : int;
  firmware_page : int;
  gate1 : int;
  gate2 : int;
  gate3 : int;
  shadow_roundtrip : int;
}

(* Calibration notes.
   - Gates: type 1 = wp_toggle*2 + irq_mask_toggle + stack_switch + sanity
     = 120 + 36 + 60 + 90 = 306 (paper: 306).
   - Type 2 = sanity-only checking loop = 16 (paper: 16).
   - Type 3 = pte write (cacheline_write) + tlb_flush_entry + sanity + map
     bookkeeping = 339 with flush 128 and write <2 (paper: 339/128/<2).
   - Shadow+check round trip of a void hypercall = vmcb copy+mask+compare
     at both boundaries, paper: 661; we charge vmcb_field_copy per field
     over the shadowed field set, sized to land there.
   - The 512 MB copy micro-benchmark: AES-NI adds ~11.5% over memcpy,
     SEV engine ~8.7%, software AES > 20x (paper Section 7.2). *)
let default = {
  dram_access = 160;
  enc_extra = 40;
  cache_hit = 4;
  cacheline_write = 1;
  tlb_flush_full = 1200;
  tlb_flush_entry = 128;
  tlb_miss_walk = 80;
  wp_toggle = 60;
  irq_mask_toggle = 36;
  stack_switch = 60;
  sanity_check = 16;
  vmexit = 1000;
  vmrun = 800;
  vmcb_field_copy = 7;
  hypercall_base = 150;
  pit_lookup = 24;
  git_lookup = 18;
  aesni_block = 1115;
  sev_engine_block = 1087;
  sw_aes_block = 21000;
  memcpy_block = 1000;
  io_sector = 12000;
  event_channel = 400;
  firmware_cmd = 5000;
  firmware_page = 2500;
  gate1 = 306;
  gate2 = 16;
  gate3 = 339;
  shadow_roundtrip = 661;
}

(* The accumulators of an active scope, resolved once at [with_scope] entry
   so the hot [charge] path touches one hash table per active scope instead
   of three. *)
type scope_frame = {
  sf_total : int ref;
  sf_cats : (string, int ref) Hashtbl.t;
}

type ledger = {
  mutable cycles : int;
  by_category : (string, int ref) Hashtbl.t;
  mutable scope_stack : scope_frame list;  (* innermost first *)
  by_scope : (string, int ref) Hashtbl.t;
  by_scope_category : (string, (string, int ref) Hashtbl.t) Hashtbl.t;
}

let root_scope = "(root)"

let ledger () =
  { cycles = 0;
    by_category = Hashtbl.create 32;
    scope_stack = [];
    by_scope = Hashtbl.create 8;
    by_scope_category = Hashtbl.create 8 }

let bump tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + n
  | None -> Hashtbl.add tbl key (ref n)

let charge l cat n =
  if n < 0 then
    invalid_arg (Printf.sprintf "Cost.charge: negative charge %d to %S" n cat);
  l.cycles <- l.cycles + n;
  bump l.by_category cat n;
  (* Book to the innermost active scope only: scope totals (plus the
     implicit root remainder) then partition the global total exactly. *)
  match l.scope_stack with
  | [] -> ()
  | frame :: _ ->
      frame.sf_total := !(frame.sf_total) + n;
      bump frame.sf_cats cat n

let scope_frame_of l scope =
  let sf_total =
    match Hashtbl.find_opt l.by_scope scope with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add l.by_scope scope r;
        r
  in
  let sf_cats =
    match Hashtbl.find_opt l.by_scope_category scope with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 8 in
        Hashtbl.add l.by_scope_category scope h;
        h
  in
  { sf_total; sf_cats }

let with_scope l scope f =
  if scope = root_scope then invalid_arg "Cost.with_scope: (root) is reserved";
  l.scope_stack <- scope_frame_of l scope :: l.scope_stack;
  if Trace.enabled () then Trace.push_scope scope;
  Fun.protect
    ~finally:(fun () ->
      (match l.scope_stack with [] -> () | _ :: rest -> l.scope_stack <- rest);
      if Trace.enabled () then Trace.pop_scope ())
    f

let total l = l.cycles

let category l cat =
  match Hashtbl.find_opt l.by_category cat with Some r -> !r | None -> 0

(* Descending by cycles; ties broken on the label so the order never
   depends on hash-table iteration. *)
let sort_counts counts =
  List.sort
    (fun (ka, a) (kb, b) -> if a <> b then compare b a else compare ka kb)
    counts

let categories l =
  sort_counts (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) l.by_category [])

let scoped_sum l = Hashtbl.fold (fun _ r acc -> acc + !r) l.by_scope 0

let scopes l =
  let named = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) l.by_scope [] in
  let rest = l.cycles - scoped_sum l in
  let all = if rest > 0 || named = [] then (root_scope, rest) :: named else named in
  sort_counts all

let scope_total l scope =
  if scope = root_scope then l.cycles - scoped_sum l
  else match Hashtbl.find_opt l.by_scope scope with Some r -> !r | None -> 0

let scope_categories l scope =
  if scope = root_scope then begin
    (* Whatever of each category is not accounted to a named scope. *)
    let residue = Hashtbl.create 32 in
    Hashtbl.iter (fun k r -> Hashtbl.replace residue k !r) l.by_category;
    Hashtbl.iter
      (fun _ cats ->
        Hashtbl.iter
          (fun k r ->
            match Hashtbl.find_opt residue k with
            | Some v -> Hashtbl.replace residue k (v - !r)
            | None -> ())
          cats)
      l.by_scope_category;
    sort_counts
      (Hashtbl.fold (fun k v acc -> if v > 0 then (k, v) :: acc else acc) residue [])
  end
  else
    match Hashtbl.find_opt l.by_scope_category scope with
    | None -> []
    | Some cats -> sort_counts (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) cats [])

let reset l =
  l.cycles <- 0;
  Hashtbl.reset l.by_category;
  Hashtbl.reset l.by_scope;
  Hashtbl.reset l.by_scope_category

let snapshot = total

let pp fmt l =
  Format.fprintf fmt "@[<v>total: %d cycles" l.cycles;
  List.iter (fun (k, v) -> Format.fprintf fmt "@,  %-24s %12d" k v) (categories l);
  Format.fprintf fmt "@]"
