type table = {
  dram_access : int;
  enc_extra : int;
  cache_hit : int;
  cacheline_write : int;
  tlb_flush_full : int;
  tlb_flush_entry : int;
  tlb_miss_walk : int;
  wp_toggle : int;
  irq_mask_toggle : int;
  stack_switch : int;
  sanity_check : int;
  vmexit : int;
  vmrun : int;
  vmcb_field_copy : int;
  hypercall_base : int;
  pit_lookup : int;
  git_lookup : int;
  aesni_block : int;
  sev_engine_block : int;
  sw_aes_block : int;
  memcpy_block : int;
  io_sector : int;
  event_channel : int;
  firmware_cmd : int;
  firmware_page : int;
  gate1 : int;
  gate2 : int;
  gate3 : int;
  shadow_roundtrip : int;
}

(* Calibration notes.
   - Gates: type 1 = wp_toggle*2 + irq_mask_toggle + stack_switch + sanity
     = 120 + 36 + 60 + 90 = 306 (paper: 306).
   - Type 2 = sanity-only checking loop = 16 (paper: 16).
   - Type 3 = pte write (cacheline_write) + tlb_flush_entry + sanity + map
     bookkeeping = 339 with flush 128 and write <2 (paper: 339/128/<2).
   - Shadow+check round trip of a void hypercall = vmcb copy+mask+compare
     at both boundaries, paper: 661; we charge vmcb_field_copy per field
     over the shadowed field set, sized to land there.
   - The 512 MB copy micro-benchmark: AES-NI adds ~11.5% over memcpy,
     SEV engine ~8.7%, software AES > 20x (paper Section 7.2). *)
let default = {
  dram_access = 160;
  enc_extra = 40;
  cache_hit = 4;
  cacheline_write = 1;
  tlb_flush_full = 1200;
  tlb_flush_entry = 128;
  tlb_miss_walk = 80;
  wp_toggle = 60;
  irq_mask_toggle = 36;
  stack_switch = 60;
  sanity_check = 16;
  vmexit = 1000;
  vmrun = 800;
  vmcb_field_copy = 7;
  hypercall_base = 150;
  pit_lookup = 24;
  git_lookup = 18;
  aesni_block = 1115;
  sev_engine_block = 1087;
  sw_aes_block = 21000;
  memcpy_block = 1000;
  io_sector = 12000;
  event_channel = 400;
  firmware_cmd = 5000;
  firmware_page = 2500;
  gate1 = 306;
  gate2 = 16;
  gate3 = 339;
  shadow_roundtrip = 661;
}

type ledger = {
  mutable cycles : int;
  by_category : (string, int ref) Hashtbl.t;
}

let ledger () = { cycles = 0; by_category = Hashtbl.create 32 }

let charge l cat n =
  l.cycles <- l.cycles + n;
  match Hashtbl.find_opt l.by_category cat with
  | Some r -> r := !r + n
  | None -> Hashtbl.add l.by_category cat (ref n)

let total l = l.cycles

let category l cat =
  match Hashtbl.find_opt l.by_category cat with Some r -> !r | None -> 0

let categories l =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) l.by_category []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let reset l =
  l.cycles <- 0;
  Hashtbl.reset l.by_category

let snapshot = total

let pp fmt l =
  Format.fprintf fmt "@[<v>total: %d cycles" l.cycles;
  List.iter (fun (k, v) -> Format.fprintf fmt "@,  %-24s %12d" k v) (categories l);
  Format.fprintf fmt "@]"
