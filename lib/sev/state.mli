(** SEV guest-context state machine (after the AMD SEV API spec).

    Every firmware command is legal only in specific states; Fidelius' novel
    API reuse (booting from an encrypted image via RECEIVE, I/O encryption
    via perpetually-sending/receiving helper contexts) leans on exactly
    these transition rules, so the simulator enforces them strictly. *)

type t =
  | Uninit      (** context allocated, no key material *)
  | Launching   (** between LAUNCH_START and LAUNCH_FINISH *)
  | Running     (** guest may execute *)
  | Sending     (** between SEND_START and SEND_FINISH; guest stopped *)
  | Receiving   (** between RECEIVE_START and RECEIVE_FINISH *)
  | Sent        (** SEND_FINISH done; context drained *)
  | Decommissioned

val to_string : t -> string

val can_transition : t -> t -> bool
(** Legal state-machine edges. *)

type 'a command_result = ('a, string) result

val require : t -> expected:t list -> cmd:string -> unit command_result
(** [require current ~expected ~cmd] is [Ok ()] when [current] is one of
    [expected], otherwise a descriptive [Error] naming the command. *)
