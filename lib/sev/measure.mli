(** Launch/transport measurement.

    The firmware accumulates a running hash of every page it processes
    during LAUNCH_UPDATE / SEND_UPDATE / RECEIVE_UPDATE; the *_FINISH
    command produces (or verifies) the measurement, keyed with the transport
    integrity key Ktik so that only a holder of Ktik can forge it. *)

type t

val create : unit -> t

val add_page : t -> index:int -> bytes -> unit
(** Fold one plaintext page (with its position) into the measurement. *)

val add_data : t -> bytes -> unit
(** Fold opaque metadata (policy bits, nonce). *)

val finalize : t -> tik:bytes -> bytes
(** The 32-byte keyed measurement. *)

val verify : t -> tik:bytes -> expected:bytes -> bool
