(** The SEV secure-processor firmware.

    Implements the command set the paper builds on: INIT, LAUNCH_*,
    ACTIVATE/DEACTIVATE/DECOMMISSION, SEND_*, RECEIVE_*, DBG_DECRYPT — with
    the AMD state machine enforced per guest context. Kvek never crosses the
    API boundary: it exists only inside contexts and in memory-controller
    key slots.

    Deliberately faithful insecurities (they are what Fidelius fixes in
    software): ACTIVATE lets its caller bind *any* handle to *any* ASID — the
    handle/ASID relationship is hypervisor-managed and unprotected, enabling
    the collusive key-sharing attack of Section 2.2; and nothing here stops
    the hypervisor from skipping or replaying page-level RECEIVE_UPDATEs —
    only the final measurement check catches it. *)

type t

type handle = int

(** {2 Firmware versioning (rollback policy)}

    The secure processor runs whatever blob the (untrusted) hypervisor
    loads. Old blobs carry published key-extraction bugs, and the platform
    identity key survives a downgrade — so a quote from a vulnerable blob
    still MAC-verifies. "Insecure Until Proven Updated" (PAPERS.md): the
    guest owner must check the {e reported version} against a policy floor
    before trusting the platform with any secret. *)

type version = { api_major : int; api_minor : int; build : int }

val current_version : version
(** The up-to-date blob every platform boots by default. *)

val vulnerable_version : version
(** The last blob with a published key-extraction bug — what a rollback
    attacker loads. *)

val minimum_safe_version : version
(** The owner-policy floor: the first build with the fix. Verifiers refuse
    any platform reporting a version below this. *)

val version_compare : version -> version -> int
val version_at_least : version -> minimum:version -> bool
val version_to_string : version -> string
val pp_version : Format.formatter -> version -> unit

val create : ?version:version -> Fidelius_hw.Machine.t -> t
(** Attach a secure processor to a platform. Generates the platform ECDH
    identity key. [version] (default {!current_version}) is the firmware
    blob the platform boots with. *)

val load_blob : t -> version -> unit
(** The hypervisor swaps the firmware blob — the rollback attack. Nothing
    authenticates this transition: the caller is the untrusted hypervisor
    and the platform identity key survives, so only a verifier's version
    policy can catch the downgrade. *)

val version : t -> version
(** The blob currently running, as reported in attestation payloads. *)

val init : t -> (unit, string) result
(** Platform INIT; all other commands fail before it. *)

val initialized : t -> bool

val platform_public : t -> Fidelius_crypto.Dh.public
(** The platform's public identity key (what a guest owner targets). *)

val policy_nodbg : int
(** Guest policy bit forbidding DBG_DECRYPT. *)

val policy_nosend : int
(** Guest policy bit forbidding SEND (the guest owner opts out of
    migration/snapshot export entirely). *)

(** {2 Launch} *)

val launch_start : t -> policy:int -> (handle, string) result
(** Fresh context with a newly generated Kvek; state LAUNCHING. *)

val launch_update : t -> handle:handle -> pfn:Fidelius_hw.Addr.pfn -> (unit, string) result
(** Encrypt a plaintext-resident page in place with the guest's Kvek and
    fold it into the launch measurement. *)

val launch_finish : t -> handle:handle -> (bytes, string) result
(** State RUNNING; returns the (unkeyed) launch digest. *)

val launch_shared : t -> handle:handle -> (handle, string) result
(** Create a helper context sharing the Kvek of an existing RUNNING guest —
    the paper's s-dom/r-dom trick (Section 4.3.5). The helper starts
    RUNNING with an empty measurement. *)

(** {2 Activation} *)

val activate : t -> handle:handle -> asid:int -> (unit, string) result
val deactivate : t -> handle:handle -> (unit, string) result
val decommission : t -> handle:handle -> (unit, string) result

val state_of : t -> handle:handle -> State.t option
val asid_of : t -> handle:handle -> int option

(** {2 Send (migration / image creation / I/O write)} *)

val send_start :
  t ->
  handle:handle ->
  target_public:Fidelius_crypto.Dh.public ->
  nonce:int64 ->
  (Fidelius_crypto.Keywrap.wrapped, string) result
(** Generate transport keys, wrap them for [target_public]; state SENDING
    (stops guest execution, per the paper's no-live-migration note). *)

val send_update :
  t -> handle:handle -> index:int -> src_pfn:Fidelius_hw.Addr.pfn -> (bytes, string) result
(** Transport ciphertext of a guest page: decrypt with Kvek, re-encrypt with
    Ktek, fold into the send measurement. *)

val send_finish : t -> handle:handle -> (bytes, string) result
(** The keyed measurement (HMAC under Ktik); state SENT. *)

(** {2 Receive (bootup from encrypted image / migration target / I/O read)} *)

val receive_start :
  t ->
  wrapped:Fidelius_crypto.Keywrap.wrapped ->
  origin_public:Fidelius_crypto.Dh.public ->
  nonce:int64 ->
  policy:int ->
  ?kvek_of:handle ->
  unit ->
  (handle, string) result
(** Unwrap Ktek/Ktik via the platform identity; fresh Kvek (or shared with
    [kvek_of], for the r-dom helper); state RECEIVING. *)

val receive_update :
  t ->
  handle:handle -> index:int -> cipher:bytes -> dst_pfn:Fidelius_hw.Addr.pfn ->
  (unit, string) result
(** Decrypt a transport page with Ktek and store it re-encrypted under Kvek
    at [dst_pfn]. *)

val receive_update_in_place :
  t -> handle:handle -> index:int -> pfn:Fidelius_hw.Addr.pfn -> (unit, string) result
(** Like {!receive_update} but the transport ciphertext was already loaded
    (by the hypervisor, plaintext-in-DRAM) into [pfn]; the firmware
    re-encrypts the frame in place — the paper's VM-bootup step 2. *)

val receive_finish : t -> handle:handle -> expected:bytes -> (unit, string) result
(** Verify the keyed measurement; state RUNNING on success, error (and no
    transition) on mismatch. *)

(** {2 Retrofitted I/O path (the paper's Section 4.3.5 reuse)}

    The s-dom helper context stays in SENDING state forever and transforms
    guest-private data (Kvek) into transport ciphertext (Ktek); the r-dom
    helper stays in RECEIVING state and performs the inverse. The nonce is
    caller-chosen (the disk sector number) so both directions agree. These
    do not touch the helper's measurement. *)

val send_update_io :
  t -> handle:handle -> nonce:int64 -> src_pfn:Fidelius_hw.Addr.pfn -> len:int ->
  (bytes, string) result
(** Decrypt [len] bytes at the start of the guest-encrypted frame [src_pfn]
    with Kvek and return them re-encrypted under Ktek. *)

val receive_update_io :
  t -> handle:handle -> nonce:int64 -> cipher:bytes -> dst_pfn:Fidelius_hw.Addr.pfn ->
  (unit, string) result
(** Decrypt transport ciphertext with Ktek and store it Kvek-encrypted at
    the start of [dst_pfn]. *)

(** {2 Customized-key extension (paper Section 8, suggestion 2)}

    The paper's proposed instruction family: SETENC_GEK generates a
    customized guest encryption key held in the firmware; ENC/DEC transform
    a specified guest-memory range under it, usable while the guest context
    is RUNNING. Compared to the SEND/RECEIVE retrofit this removes the
    helper s-dom/r-dom contexts and their state-machine gymnastics (one
    firmware command to set up instead of three, no perpetually-SENDING
    contexts), which is exactly the simplification the paper argues for. *)

val setenc_gek : t -> handle:handle -> (int, string) result
(** Generate a fresh GEK for the guest; returns its id. The key never
    leaves the firmware. *)

val enc_range :
  t -> handle:handle -> gek:int -> nonce:int64 -> src_pfn:Fidelius_hw.Addr.pfn -> len:int ->
  (bytes, string) result
(** Decrypt [len] bytes of the guest's (Kvek-encrypted) frame and return
    them re-encrypted under the GEK. Legal in RUNNING state. *)

val dec_range :
  t -> handle:handle -> gek:int -> nonce:int64 -> cipher:bytes ->
  dst_pfn:Fidelius_hw.Addr.pfn ->
  (unit, string) result
(** Inverse: GEK ciphertext lands Kvek-encrypted in the guest frame. *)

(** {2 Attestation} *)

val attestation_key : t -> bytes
(** The platform's attestation verification key. On real hardware the
    verifier gets the corresponding public key through AMD's certificate
    chain and the quote is a signature; the simulator models the chain's
    effect — a verifier-obtainable key that only this platform's firmware
    can produce quotes under — with a MAC key handed out by this accessor
    (treat calls to it as "fetched the cert chain"). *)

val attest : t -> data:bytes -> nonce:int64 -> bytes
(** Produce a 32-byte quote over [data] bound to the verifier's [nonce]. *)

val verify_quote :
  attestation_key:bytes -> data:bytes -> nonce:int64 -> quote:bytes -> bool
(** Verifier side; pure function of the cert-chain key. *)

(** {2 Debug} *)

val dbg_decrypt :
  t -> handle:handle -> pfn:Fidelius_hw.Addr.pfn -> (bytes, string) result
(** Firmware-assisted decryption of a guest page — refused when the guest
    policy carries {!policy_nodbg}. *)
