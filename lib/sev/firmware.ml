module Rng = Fidelius_crypto.Rng
module Dh = Fidelius_crypto.Dh
module Keywrap = Fidelius_crypto.Keywrap
module Machine = Fidelius_hw.Machine
module Memctrl = Fidelius_hw.Memctrl
module Physmem = Fidelius_hw.Physmem
module Addr = Fidelius_hw.Addr
module Cost = Fidelius_hw.Cost
module Plan = Fidelius_inject.Plan
module Site = Fidelius_inject.Site

type handle = int

type version = { api_major : int; api_minor : int; build : int }

(* The blob AMD ships today, the last blob with a published key-extraction
   bug, and the owner-policy floor between them ("Insecure Until Proven
   Updated": the guest owner must refuse any platform reporting a build
   below the first fixed one, whatever its measurement says). *)
let current_version = { api_major = 0; api_minor = 24; build = 15 }
let vulnerable_version = { api_major = 0; api_minor = 17; build = 5 }
let minimum_safe_version = { api_major = 0; api_minor = 22; build = 3 }

let version_compare a b =
  match compare a.api_major b.api_major with
  | 0 -> (
      match compare a.api_minor b.api_minor with
      | 0 -> compare a.build b.build
      | c -> c)
  | c -> c

let version_at_least v ~minimum = version_compare v minimum >= 0

let version_to_string v = Printf.sprintf "%d.%d.%d" v.api_major v.api_minor v.build
let pp_version fmt v = Format.pp_print_string fmt (version_to_string v)

type guest_ctx = {
  handle : handle;
  mutable state : State.t;
  kvek : bytes;
  policy : int;
  mutable asid : int option;
  mutable tek : Transport.tek_key option;
  mutable tik : bytes option;
  mutable nonce : int64;
  mutable measure : Measure.t;
}

type t = {
  machine : Machine.t;
  mutable is_initialized : bool;
  contexts : (handle, guest_ctx) Hashtbl.t;
  mutable next_handle : handle;
  platform_secret : Dh.secret;
  platform_pub : Dh.public;
  rng : Rng.t;
  geks : (handle * int, bytes) Hashtbl.t;
  mutable next_gek : int;
  mutable fw_version : version;
}

let policy_nodbg = 1
let policy_nosend = 2

let create ?(version = current_version) machine =
  let rng = Rng.split machine.Machine.rng in
  let platform_secret, platform_pub = Dh.generate rng in
  { machine;
    is_initialized = false;
    contexts = Hashtbl.create 16;
    next_handle = 1;
    platform_secret;
    platform_pub;
    rng;
    geks = Hashtbl.create 16;
    next_gek = 1;
    fw_version = version }

(* The hypervisor controls which blob the secure processor boots — that is
   the rollback attack, and nothing here stops it. The platform identity
   key survives the swap (old firmware held the same fuses), so quotes from
   the downgraded blob still MAC-verify; the reported version is the only
   tell, which is exactly why the owner's verifier must check it. *)
let load_blob t v = t.fw_version <- v
let version t = t.fw_version

module Trace = Fidelius_obs.Trace

let c_sev_fw = Cost.intern "sev-fw"

let charge_cmd t name =
  Cost.charge_id t.machine.Machine.ledger c_sev_fw t.machine.Machine.costs.Cost.firmware_cmd;
  if Trace.enabled () then Trace.emit (Trace.Fw_cmd name)

(* The secure processor's stores are coherent with the CPU caches: evict
   any stale plaintext lines whenever the firmware rewrites a frame. *)
let coherent_write t ~key pfn plain =
  Memctrl.fw_write_page t.machine.Machine.ctrl ~key pfn plain;
  Fidelius_hw.Cache.invalidate_page t.machine.Machine.cache pfn

let coherent_encrypt t ~key pfn =
  Memctrl.fw_encrypt_page t.machine.Machine.ctrl ~key pfn;
  Fidelius_hw.Cache.invalidate_page t.machine.Machine.cache pfn
let charge_page t name =
  Cost.charge_id t.machine.Machine.ledger c_sev_fw t.machine.Machine.costs.Cost.firmware_page;
  if Trace.enabled () then Trace.emit (Trace.Fw_cmd name)

let ( let* ) = Result.bind

let initialized t = t.is_initialized

let init t =
  charge_cmd t "INIT";
  if t.is_initialized then Error "INIT: platform already initialized"
  else begin
    t.is_initialized <- true;
    Ok ()
  end

let platform_public t = t.platform_pub

let need_init t cmd =
  if t.is_initialized then Ok () else Error (cmd ^ ": platform not initialized")

let ctx t handle cmd =
  match Hashtbl.find_opt t.contexts handle with
  | Some c when c.state <> State.Decommissioned -> Ok c
  | Some _ -> Error (Printf.sprintf "%s: handle %d is decommissioned" cmd handle)
  | None -> Error (Printf.sprintf "%s: unknown handle %d" cmd handle)

let fresh_handle t =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  h

let launch_start t ~policy =
  charge_cmd t "LAUNCH_START";
  let* () = need_init t "LAUNCH_START" in
  let handle = fresh_handle t in
  Hashtbl.replace t.contexts handle
    { handle;
      state = State.Launching;
      kvek = Rng.bytes t.rng 16;
      policy;
      asid = None;
      tek = None;
      tik = None;
      nonce = 0L;
      measure = Measure.create () };
  Ok handle

let launch_update t ~handle ~pfn =
  charge_page t "LAUNCH_UPDATE";
  let* c = ctx t handle "LAUNCH_UPDATE" in
  let* () = State.require c.state ~expected:[ State.Launching ] ~cmd:"LAUNCH_UPDATE" in
  let plain = Physmem.read_raw t.machine.Machine.mem pfn ~off:0 ~len:Addr.page_size in
  Measure.add_page c.measure ~index:pfn plain;
  coherent_encrypt t ~key:c.kvek pfn;
  Ok ()

let launch_finish t ~handle =
  charge_cmd t "LAUNCH_FINISH";
  let* c = ctx t handle "LAUNCH_FINISH" in
  let* () = State.require c.state ~expected:[ State.Launching ] ~cmd:"LAUNCH_FINISH" in
  c.state <- State.Running;
  (* Unkeyed digest: the launch flow's attestation root. *)
  Ok (Measure.finalize c.measure ~tik:(Bytes.create 0))

let launch_shared t ~handle =
  charge_cmd t "LAUNCH(shared)";
  let* c = ctx t handle "LAUNCH(shared)" in
  let* () = State.require c.state ~expected:[ State.Running ] ~cmd:"LAUNCH(shared)" in
  let helper = fresh_handle t in
  Hashtbl.replace t.contexts helper
    { handle = helper;
      state = State.Running;
      kvek = Bytes.copy c.kvek;
      policy = c.policy;
      asid = None;
      tek = None;
      tik = None;
      nonce = 0L;
      measure = Measure.create () };
  Ok helper

(* ACTIVATE binds handle to ASID with no ownership validation: the
   handle/ASID relationship is hypervisor-managed state, which is precisely
   the weakness the paper points out. *)
let activate t ~handle ~asid =
  charge_cmd t "ACTIVATE";
  let* c = ctx t handle "ACTIVATE" in
  if asid <= 0 then Error "ACTIVATE: ASID must be positive"
  else begin
    c.asid <- Some asid;
    Memctrl.install_key t.machine.Machine.ctrl ~asid c.kvek;
    Ok ()
  end

let deactivate t ~handle =
  charge_cmd t "DEACTIVATE";
  let* c = ctx t handle "DEACTIVATE" in
  match c.asid with
  | None -> Error "DEACTIVATE: guest not activated"
  | Some asid ->
      Memctrl.uninstall_key t.machine.Machine.ctrl ~asid;
      c.asid <- None;
      Ok ()

let decommission t ~handle =
  charge_cmd t "DECOMMISSION";
  let* c = ctx t handle "DECOMMISSION" in
  (match c.asid with
  | Some asid -> Memctrl.uninstall_key t.machine.Machine.ctrl ~asid
  | None -> ());
  c.asid <- None;
  c.state <- State.Decommissioned;
  (* Scrub key material. *)
  Bytes.fill c.kvek 0 (Bytes.length c.kvek) '\000';
  Ok ()

let state_of t ~handle =
  Option.map (fun c -> c.state) (Hashtbl.find_opt t.contexts handle)

let asid_of t ~handle =
  Option.bind (Hashtbl.find_opt t.contexts handle) (fun c -> c.asid)

let send_start t ~handle ~target_public ~nonce =
  charge_cmd t "SEND_START";
  let* c = ctx t handle "SEND_START" in
  let* () = State.require c.state ~expected:[ State.Running ] ~cmd:"SEND_START" in
  let* () =
    if c.policy land policy_nosend <> 0 then
      Error "SEND_START: forbidden by guest policy (NOSEND)"
    else Ok ()
  in
  let tek = Rng.bytes t.rng 16 and tik = Rng.bytes t.rng 32 in
  c.tek <- Some (Transport.tek_key tek);
  c.tik <- Some tik;
  c.nonce <- nonce;
  c.measure <- Measure.create ();
  c.state <- State.Sending;
  let kek =
    Transport.derive_master_secret ~secret:t.platform_secret ~peer_public:target_public ~nonce
  in
  Ok (Keywrap.wrap ~kek (Bytes.cat tek tik))

let send_update t ~handle ~index ~src_pfn =
  charge_page t "SEND_UPDATE";
  let* c = ctx t handle "SEND_UPDATE" in
  let* () = State.require c.state ~expected:[ State.Sending ] ~cmd:"SEND_UPDATE" in
  match c.tek with
  | None -> Error "SEND_UPDATE: no transport key"
  | Some tek ->
      let plain = Memctrl.fw_decrypt_page t.machine.Machine.ctrl ~key:c.kvek src_pfn in
      Measure.add_page c.measure ~index plain;
      Ok (Transport.page_cipher ~tek ~index plain)

let send_finish t ~handle =
  charge_cmd t "SEND_FINISH";
  let* c = ctx t handle "SEND_FINISH" in
  let* () = State.require c.state ~expected:[ State.Sending ] ~cmd:"SEND_FINISH" in
  match c.tik with
  | None -> Error "SEND_FINISH: no integrity key"
  | Some tik ->
      c.state <- State.Sent;
      Measure.add_data c.measure (Transport.measurement_meta ~policy:c.policy ~nonce:c.nonce);
      Ok (Measure.finalize c.measure ~tik)

let receive_start t ~wrapped ~origin_public ~nonce ~policy ?kvek_of () =
  charge_cmd t "RECEIVE_START";
  let* () = need_init t "RECEIVE_START" in
  let kek =
    Transport.derive_master_secret ~secret:t.platform_secret ~peer_public:origin_public ~nonce
  in
  match Keywrap.unwrap ~kek wrapped with
  | None -> Error "RECEIVE_START: transport key unwrap failed (wrong platform or tampered)"
  | Some keys when Bytes.length keys <> 48 -> Error "RECEIVE_START: malformed transport keys"
  | Some keys -> (
      let tek = Transport.tek_key (Bytes.sub keys 0 16) and tik = Bytes.sub keys 16 32 in
      let* kvek =
        match kvek_of with
        | None -> Ok (Rng.bytes t.rng 16)
        | Some h ->
            let* src = ctx t h "RECEIVE_START(kvek_of)" in
            Ok (Bytes.copy src.kvek)
      in
      let handle = fresh_handle t in
      Hashtbl.replace t.contexts handle
        { handle;
          state = State.Receiving;
          kvek;
          policy;
          asid = None;
          tek = Some tek;
          tik = Some tik;
          nonce;
          measure = Measure.create () };
      Ok handle)

let receive_update t ~handle ~index ~cipher ~dst_pfn =
  charge_page t "RECEIVE_UPDATE";
  let* c = ctx t handle "RECEIVE_UPDATE" in
  let* () = State.require c.state ~expected:[ State.Receiving ] ~cmd:"RECEIVE_UPDATE" in
  match c.tek with
  | None -> Error "RECEIVE_UPDATE: no transport key"
  | Some tek ->
      if Bytes.length cipher <> Addr.page_size then Error "RECEIVE_UPDATE: need a full page"
      else if Plan.armed () && Plan.fire Site.Fw_drop then
        (* a hostile platform silently discards the command yet reports
           success; the gap must surface at RECEIVE_FINISH, not here *)
        Ok ()
      else begin
        let apply () =
          let plain = Transport.page_plain ~tek ~index cipher in
          Measure.add_page c.measure ~index plain;
          coherent_write t ~key:c.kvek dst_pfn plain
        in
        apply ();
        if Plan.armed () && Plan.fire Site.Fw_replay then apply ();
        Ok ()
      end

let receive_update_in_place t ~handle ~index ~pfn =
  let cipher = Physmem.read_raw t.machine.Machine.mem pfn ~off:0 ~len:Addr.page_size in
  receive_update t ~handle ~index ~cipher ~dst_pfn:pfn

let send_update_io t ~handle ~nonce ~src_pfn ~len =
  charge_page t "SEND_UPDATE(io)";
  let* c = ctx t handle "SEND_UPDATE(io)" in
  let* () = State.require c.state ~expected:[ State.Sending ] ~cmd:"SEND_UPDATE(io)" in
  match c.tek with
  | None -> Error "SEND_UPDATE(io): no transport key"
  | Some tek ->
      if len <= 0 || len > Addr.page_size then Error "SEND_UPDATE(io): bad length"
      else begin
        let plain_page = Memctrl.fw_decrypt_page t.machine.Machine.ctrl ~key:c.kvek src_pfn in
        let plain = Bytes.sub plain_page 0 len in
        Ok (Fidelius_crypto.Modes.ctr_transform tek.Transport.aes ~nonce plain)
      end

let receive_update_io t ~handle ~nonce ~cipher ~dst_pfn =
  charge_page t "RECEIVE_UPDATE(io)";
  let* c = ctx t handle "RECEIVE_UPDATE(io)" in
  let* () = State.require c.state ~expected:[ State.Receiving ] ~cmd:"RECEIVE_UPDATE(io)" in
  match c.tek with
  | None -> Error "RECEIVE_UPDATE(io): no transport key"
  | Some tek ->
      let len = Bytes.length cipher in
      if len <= 0 || len > Addr.page_size then Error "RECEIVE_UPDATE(io): bad length"
      else begin
        let plain =
          Fidelius_crypto.Modes.ctr_transform tek.Transport.aes ~nonce cipher
        in
        (* Read-modify-write the destination frame under Kvek so only the
           payload prefix changes. *)
        let page = Memctrl.fw_decrypt_page t.machine.Machine.ctrl ~key:c.kvek dst_pfn in
        Bytes.blit plain 0 page 0 len;
        coherent_write t ~key:c.kvek dst_pfn page;
        Ok ()
      end

let receive_finish t ~handle ~expected =
  charge_cmd t "RECEIVE_FINISH";
  let* c = ctx t handle "RECEIVE_FINISH" in
  let* () = State.require c.state ~expected:[ State.Receiving ] ~cmd:"RECEIVE_FINISH" in
  match c.tik with
  | None -> Error "RECEIVE_FINISH: no integrity key"
  | Some tik ->
      Measure.add_data c.measure (Transport.measurement_meta ~policy:c.policy ~nonce:c.nonce);
      if Measure.verify c.measure ~tik ~expected then begin
        c.state <- State.Running;
        Ok ()
      end
      else Error "RECEIVE_FINISH: measurement mismatch (image tampered or replayed)"

(* --- customized-key extension (paper Section 8) ----------------------- *)

let setenc_gek t ~handle =
  charge_cmd t "SETENC_GEK";
  let* c = ctx t handle "SETENC_GEK" in
  let* () = State.require c.state ~expected:[ State.Running ] ~cmd:"SETENC_GEK" in
  let id = t.next_gek in
  t.next_gek <- id + 1;
  Hashtbl.replace t.geks (handle, id) (Rng.bytes t.rng 16);
  Ok id

let find_gek t handle gek cmd =
  match Hashtbl.find_opt t.geks (handle, gek) with
  | Some k -> Ok k
  | None -> Error (Printf.sprintf "%s: no GEK %d for handle %d" cmd gek handle)

let enc_range t ~handle ~gek ~nonce ~src_pfn ~len =
  charge_page t "ENC";
  let* c = ctx t handle "ENC" in
  let* () = State.require c.state ~expected:[ State.Running ] ~cmd:"ENC" in
  let* key = find_gek t handle gek "ENC" in
  if len <= 0 || len > Addr.page_size then Error "ENC: bad length"
  else begin
    let plain_page = Memctrl.fw_decrypt_page t.machine.Machine.ctrl ~key:c.kvek src_pfn in
    let plain = Bytes.sub plain_page 0 len in
    Ok (Fidelius_crypto.Modes.ctr_transform (Fidelius_crypto.Aes.expand key) ~nonce plain)
  end

let dec_range t ~handle ~gek ~nonce ~cipher ~dst_pfn =
  charge_page t "DEC";
  let* c = ctx t handle "DEC" in
  let* () = State.require c.state ~expected:[ State.Running ] ~cmd:"DEC" in
  let* key = find_gek t handle gek "DEC" in
  let len = Bytes.length cipher in
  if len <= 0 || len > Addr.page_size then Error "DEC: bad length"
  else begin
    let plain =
      Fidelius_crypto.Modes.ctr_transform (Fidelius_crypto.Aes.expand key) ~nonce cipher
    in
    let page = Memctrl.fw_decrypt_page t.machine.Machine.ctrl ~key:c.kvek dst_pfn in
    Bytes.blit plain 0 page 0 len;
    coherent_write t ~key:c.kvek dst_pfn page;
    Ok ()
  end

(* --- attestation -------------------------------------------------------- *)

let attestation_key t =
  (* Derived from the platform identity; conceptually the public half of a
     signing pair distributed via the manufacturer certificate chain. *)
  Fidelius_crypto.Sha256.digest
    (Bytes.cat (Dh.public_to_bytes t.platform_pub) (Bytes.of_string "attest-key"))

let quote_payload ~data ~nonce =
  let b = Bytes.create (8 + Bytes.length data) in
  Bytes.set_int64_be b 0 nonce;
  Bytes.blit data 0 b 8 (Bytes.length data);
  b

let attest t ~data ~nonce =
  charge_cmd t "ATTEST";
  Fidelius_crypto.Hmac.mac ~key:(attestation_key t) (quote_payload ~data ~nonce)

let verify_quote ~attestation_key ~data ~nonce ~quote =
  Fidelius_crypto.Hmac.verify ~key:attestation_key ~tag:quote (quote_payload ~data ~nonce)

let dbg_decrypt t ~handle ~pfn =
  charge_page t "DBG_DECRYPT";
  let* c = ctx t handle "DBG_DECRYPT" in
  if c.policy land policy_nodbg <> 0 then
    Error "DBG_DECRYPT: forbidden by guest policy (NODBG)"
  else Ok (Memctrl.fw_decrypt_page t.machine.Machine.ctrl ~key:c.kvek pfn)
