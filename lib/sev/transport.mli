(** Encrypted transport images and the guest-owner tooling.

    An {!image} is what crosses the untrusted channel during migration — and,
    in Fidelius' retrofit, what the guest owner ships as an *encrypted kernel
    image* for VM bootup (paper Section 4.3.2): per-page ciphertext under the
    transport encryption key (Ktek), a keyed measurement under the transport
    integrity key (Ktik), and the key material wrapped for the target
    platform's firmware.

    {!Owner} is the trusted-environment side: it plays the role the SEND API
    plays inside a source platform's firmware, which is exactly the paper's
    observation — the image format produced by an owner offline and by a
    migrating platform are one and the same. *)

type image = {
  pages : (int * bytes) list;  (** (page index, Ktek-encrypted page) *)
  measurement : bytes;         (** HMAC(Ktik, pages ++ metadata) *)
  policy : int;
  nonce : int64;               (** guest-provided anti-replay nonce (Nvm) *)
}

type tek_key = {
  raw : bytes;                    (** Ktek bytes, for wrapping *)
  aes : Fidelius_crypto.Aes.key;  (** schedule expanded once per image *)
}
(** A transport encryption key prepared with {!tek_key} — per-page commands
    reuse the expanded schedule instead of re-running the AES key schedule
    for every page. *)

val tek_key : bytes -> tek_key

val page_cipher : tek:tek_key -> index:int -> bytes -> bytes
(** Encrypt one page for transport (CTR keyed by Ktek, nonce bound to the
    page index and the image nonce is folded into the measurement). *)

val page_plain : tek:tek_key -> index:int -> bytes -> bytes

module Owner : sig
  type prepared = {
    image : image;
    wrapped_keys : Fidelius_crypto.Keywrap.wrapped;
        (** Ktek || Ktik wrapped under the owner-platform master secret *)
    owner_public : Fidelius_crypto.Dh.public;
    kblk : bytes; (** disk-image encryption key, embedded in the kernel image *)
  }

  val prepare :
    rng:Fidelius_crypto.Rng.t ->
    platform_public:Fidelius_crypto.Dh.public ->
    policy:int ->
    kernel_pages:bytes list ->
    prepared
  (** Build an encrypted kernel image in a trusted environment, targeted at
      the platform identified by [platform_public]. A fresh disk key Kblk is
      generated and spliced into the first kernel page (the simulator's
      stand-in for "embedded in the encrypted kernel image"), at
      {!kblk_offset}. *)

  val kblk_offset : int
  (** Byte offset of Kblk within kernel page 0. *)
end

val measurement_meta : policy:int -> nonce:int64 -> bytes
(** The metadata frame (policy || nonce) folded into every image
    measurement — by the owner tooling and by the firmware's SEND/RECEIVE
    *_FINISH commands, which must agree byte-for-byte. *)

val derive_master_secret :
  secret:Fidelius_crypto.Dh.secret ->
  peer_public:Fidelius_crypto.Dh.public ->
  nonce:int64 ->
  bytes
(** The ECDH-agreed key-encryption key: both the owner (origin) and the
    target platform firmware derive it; the relaying hypervisor cannot. *)
