type t =
  | Uninit
  | Launching
  | Running
  | Sending
  | Receiving
  | Sent
  | Decommissioned

let to_string = function
  | Uninit -> "UNINIT"
  | Launching -> "LAUNCHING"
  | Running -> "RUNNING"
  | Sending -> "SENDING"
  | Receiving -> "RECEIVING"
  | Sent -> "SENT"
  | Decommissioned -> "DECOMMISSIONED"

let can_transition from into =
  match (from, into) with
  | Uninit, Launching
  | Uninit, Receiving
  | Launching, Running
  | Running, Sending
  | Receiving, Running
  | Sending, Sent -> true
  | _, Decommissioned -> not (from = Decommissioned)
  | _, _ -> false

type 'a command_result = ('a, string) result

let require current ~expected ~cmd =
  if List.mem current expected then Ok ()
  else
    Error
      (Printf.sprintf "%s: invalid guest state %s (expected %s)" cmd (to_string current)
         (String.concat " or " (List.map to_string expected)))
