module Sha256 = Fidelius_crypto.Sha256
module Hmac = Fidelius_crypto.Hmac

type t = { ctx : Sha256.ctx; mutable finalized : bytes option }

let create () = { ctx = Sha256.init (); finalized = None }

let add_page t ~index plain =
  assert (t.finalized = None);
  Sha256.feed_u64_be t.ctx (Int64.of_int index);
  Sha256.feed t.ctx plain

let add_data t data =
  assert (t.finalized = None);
  Sha256.feed t.ctx data

let digest t =
  match t.finalized with
  | Some d -> d
  | None ->
      let d = Sha256.finalize t.ctx in
      t.finalized <- Some d;
      d

let finalize t ~tik = Hmac.mac ~key:tik (digest t)

let verify t ~tik ~expected = Hmac.verify ~key:tik ~tag:expected (digest t)
