module Rng = Fidelius_crypto.Rng
module Dh = Fidelius_crypto.Dh
module Aes = Fidelius_crypto.Aes
module Modes = Fidelius_crypto.Modes
module Sha256 = Fidelius_crypto.Sha256
module Keywrap = Fidelius_crypto.Keywrap
module Addr = Fidelius_hw.Addr

type image = {
  pages : (int * bytes) list;
  measurement : bytes;
  policy : int;
  nonce : int64;
}

(* The transport key with its AES schedule expanded once per image, not
   once per page. [raw] is kept for wrapping/serialization. *)
type tek_key = { raw : bytes; aes : Aes.key }

let tek_key raw = { raw; aes = Aes.expand raw }

(* Transport pages use CTR with the page index as nonce: deterministic,
   and any reordering is caught by the index-bound measurement. *)
let page_cipher ~tek ~index plain =
  Modes.ctr_transform tek.aes ~nonce:(Int64.of_int index) plain

let page_plain ~tek ~index cipher =
  Modes.ctr_transform tek.aes ~nonce:(Int64.of_int index) cipher

let derive_master_secret ~secret ~peer_public ~nonce =
  let shared = Dh.shared_secret secret peer_public in
  Sha256.digest_build (fun ctx ->
      Sha256.feed ctx shared;
      Sha256.feed_u64_be ctx nonce)

let measurement_meta ~policy ~nonce =
  let meta = Bytes.create 12 in
  Bytes.set_int32_be meta 0 (Int32.of_int policy);
  Bytes.set_int64_be meta 4 nonce;
  meta

let measure_image ~tik ~policy ~nonce pages =
  let m = Measure.create () in
  List.iter (fun (index, plain) -> Measure.add_page m ~index plain) pages;
  Measure.add_data m (measurement_meta ~policy ~nonce);
  Measure.finalize m ~tik

module Owner = struct
  type prepared = {
    image : image;
    wrapped_keys : Keywrap.wrapped;
    owner_public : Dh.public;
    kblk : bytes;
  }

  let kblk_offset = 64

  let prepare ~rng ~platform_public ~policy ~kernel_pages =
    List.iter
      (fun p ->
        if Bytes.length p <> Addr.page_size then
          invalid_arg "Transport.Owner.prepare: kernel pages must be page-sized")
      kernel_pages;
    let tek_raw = Rng.bytes rng 16 and tik = Rng.bytes rng 32 in
    let tek = tek_key tek_raw in
    let kblk = Rng.bytes rng 16 in
    let nonce = Rng.next64 rng in
    let owner_secret, owner_public = Dh.generate rng in
    (* Embed Kblk into page 0 before encryption, so it travels only inside
       the protected kernel image. *)
    let plain_pages =
      List.mapi
        (fun index page ->
          let page = Bytes.copy page in
          if index = 0 then Bytes.blit kblk 0 page kblk_offset 16;
          (index, page))
        kernel_pages
    in
    let measurement = measure_image ~tik ~policy ~nonce plain_pages in
    let pages =
      List.map (fun (index, plain) -> (index, page_cipher ~tek ~index plain)) plain_pages
    in
    let kek = derive_master_secret ~secret:owner_secret ~peer_public:platform_public ~nonce in
    let wrapped_keys = Keywrap.wrap ~kek (Bytes.cat tek_raw tik) in
    { image = { pages; measurement; policy; nonce }; wrapped_keys; owner_public; kblk }
end
