(** AES-128 block cipher (FIPS-197), implemented from scratch.

    This is the cryptographic core behind every encryption engine in the
    simulator: the SME/SEV memory-controller engine ({!Fidelius_hw.Memctrl}),
    the simulated AES-NI instruction path and the software-AES fallback used
    by the I/O-protection ablation. Correctness is pinned to the FIPS-197
    appendix test vectors in the test suite. *)

type key
(** An expanded AES-128 key schedule: 44 encryption round-key words plus the
    equivalent-inverse-cipher decryption schedule (InvMixColumns pre-applied
    to rounds 1..9), both as flat int arrays for the T-table block functions.

    Thread-safety: each key carries a small mutable scratch state reused
    across calls, so a [key] must never be shared between domains.
    Under the fleet runner ([Fidelius_fleet.Pool]) this holds by
    construction — every shard builds its own machine, whose engines
    {!expand} their own keys; only hand a key to another domain if the
    expanding domain never touches it again. *)

val block_size : int
(** Block size in bytes (16). *)

val key_size : int
(** Key size in bytes (16). *)

val expand : bytes -> key
(** [expand raw] expands a 16-byte key. Raises [Invalid_argument] on a wrong
    key length. *)

val encrypt_block : key -> bytes -> bytes
(** [encrypt_block k plain] encrypts one 16-byte block. Raises
    [Invalid_argument] on a wrong block length. *)

val decrypt_block : key -> bytes -> bytes
(** Inverse of {!encrypt_block}. *)

val encrypt_block_into : key -> src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> unit
(** Allocation-free variant used on the hot memory-controller path. *)

val decrypt_block_into : key -> src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> unit

val schedule_words : key -> int array
(** The 44 expanded encryption round-key words (big-endian packed), exposed
    so the FIPS-197 Appendix A key-expansion vectors can be checked in the
    test suite. Returns a copy. *)
