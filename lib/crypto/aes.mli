(** AES-128 block cipher (FIPS-197), implemented from scratch.

    This is the cryptographic core behind every encryption engine in the
    simulator: the SME/SEV memory-controller engine ({!Fidelius_hw.Memctrl}),
    the simulated AES-NI instruction path and the software-AES fallback used
    by the I/O-protection ablation. Correctness is pinned to the FIPS-197
    appendix test vectors in the test suite.

    Since the hardware-backend work the module is two-layered: the OCaml
    T-table implementation is kept as the executable specification
    ([*_reference] entry points), while the production entry points
    dispatch to C cores in [aes_stubs.c] — VAES, AES-NI (pipelined eight
    blocks per call) or a portable C fallback, probed once from CPUID at
    startup. Every backend is cross-checked against the reference by the
    test suite, and all of them produce byte-identical output: switching
    backend (or machine) never changes ciphertext, only wall-clock time. *)

type key
(** An expanded AES-128 key schedule: 44 encryption round-key words plus the
    equivalent-inverse-cipher decryption schedule (InvMixColumns pre-applied
    to rounds 1..9), kept both as flat int arrays for the reference T-table
    block functions and serialized into a 352-byte buffer the C backends
    load their round keys from.

    Thread-safety: the C backends keep no per-key scratch — their working
    state lives in registers and the C stack, and the only globals are the
    lookup tables and the backend-selection word, both written once at
    startup — but the {e reference} path still carries a small mutable
    scratch state reused across calls, and {!set_backend} mutates the
    process-wide selection. So the rule stays: a [key] must never be shared
    between domains, and {!set_backend} belongs in single-domain test code
    only. Under the fleet runner ([Fidelius_fleet.Pool]) this holds by
    construction — every shard builds its own machine, whose engines
    {!expand} their own keys; only hand a key to another domain if the
    expanding domain never touches it again. *)

val block_size : int
(** Block size in bytes (16). *)

val key_size : int
(** Key size in bytes (16). *)

val expand : bytes -> key
(** [expand raw] expands a 16-byte key — in OCaml for the reference
    schedule and in C (with [aeskeygenassist] on the hardware tiers) for
    the backend schedule; the two are byte-identical. Raises
    [Invalid_argument] on a wrong key length. *)

val encrypt_block : key -> bytes -> bytes
(** [encrypt_block k plain] encrypts one 16-byte block. Raises
    [Invalid_argument] on a wrong block length. *)

val decrypt_block : key -> bytes -> bytes
(** Inverse of {!encrypt_block}. *)

val encrypt_block_into : key -> src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> unit
(** Allocation-free variant used on the hot memory-controller path.
    [src] and [dst] may be the same buffer at the same offset. *)

val decrypt_block_into : key -> src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> unit

(** {2 Bulk entry points}

    One C call per multi-block run; {!Modes} builds ECB, CTR and XEX on
    these. All offsets/lengths are validated here — the C side trusts its
    caller. [src] and [dst] may be the same buffer at the same offset. *)

val blocks_into :
  key -> encrypt:bool -> src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> nblocks:int -> unit
(** ECB over [nblocks] consecutive 16-byte blocks. *)

val ctr_into : key -> nonce:int64 -> src:bytes -> dst:bytes -> len:int -> unit
(** CTR keystream XOR over [len] bytes (any length; the counter block is
    [nonce || block_index], both big-endian). *)

val xex_span_into :
  key -> encrypt:bool -> tweak0:int64 -> tweak_step:int64 ->
  src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> len:int -> unit
(** Span-granular XEX: block [i] is whitened with
    [AES_k(tweak0 + i * tweak_step || tag)] before and after the block
    cipher. The tweak masks are generated, applied and discarded inside the
    single C call — this is the memory controller's per-page fast path.
    [len] must be a multiple of 16. *)

val xex_sectors_into :
  key -> encrypt:bool -> tweak0:int64 -> sector_stride:int64 -> sector_bytes:int ->
  src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> nsectors:int -> unit
(** Sector-granular XEX: [nsectors] consecutive tiles of [sector_bytes]
    each, where tile [i]'s tweak restarts at [tweak0 + i * sector_stride]
    and advances by 1 per block inside the tile — the disk-codec layout
    (each 512-byte sector owns a 64-wide tweak lane). The tile sequence is
    not one affine tweak progression, so it cannot ride {!xex_span_into};
    this runs a whole batch of sectors in one C call. [sector_bytes] must
    be a positive multiple of 16. *)

(** {2 Executable specification}

    The original OCaml T-table implementation, kept as the reference the
    test suite cross-checks every C backend against. Not used on hot
    paths. *)

val encrypt_block_reference : key -> bytes -> bytes
val decrypt_block_reference : key -> bytes -> bytes

val encrypt_block_reference_into :
  key -> src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> unit

val decrypt_block_reference_into :
  key -> src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> unit

(** {2 Backend introspection} *)

val backend : unit -> string
(** The active C backend: ["vaes"], ["aes-ni"] or ["c-portable"].
    Selected once from CPUID at startup. *)

val set_backend : [ `Auto | `Vaes | `Aesni | `Portable ] -> bool
(** Force a backend, for tests and diagnostics. Returns [false] (leaving
    the selection unchanged) if the requested tier is not available on this
    CPU. [`Auto] re-probes and always succeeds. Process-wide — see the
    thread-safety note on {!key}. *)

val cpu_features : unit -> string list
(** CPUID feature flags relevant to crypto backend selection, e.g.
    [["aes"; "ssse3"; "sse4.1"; "avx2"; "vaes"; "sha"; "ymm-os"]]. *)

val schedule_words : key -> int array
(** The 44 expanded encryption round-key words (big-endian packed), exposed
    so the FIPS-197 Appendix A key-expansion vectors can be checked in the
    test suite. Returns a copy. *)

val schedule_bytes : key -> bytes
(** The 352-byte serialized schedule the C backends use (encryption rounds
    at 0..175, equivalent-inverse-cipher decryption rounds at 176..351),
    exposed so the test suite can check the C key expansion against the
    OCaml one. Returns a copy. *)
