type public = int64
type secret = int64

let p = 2305843009213693951L (* 2^61 - 1 *)
let generator = 7L

(* a * b mod p by peasant multiplication: every intermediate stays below
   2 * p < 2^62, so Int64 never overflows. *)
let mulmod a b =
  let rec loop a b acc =
    if Int64.equal b 0L then acc
    else
      let acc =
        if Int64.equal (Int64.logand b 1L) 1L then Int64.rem (Int64.add acc a) p else acc
      in
      loop (Int64.rem (Int64.add a a) p) (Int64.shift_right_logical b 1) acc
  in
  loop (Int64.rem a p) b 0L

let powmod base expn =
  let rec loop base expn acc =
    if Int64.equal expn 0L then acc
    else
      let acc = if Int64.equal (Int64.logand expn 1L) 1L then mulmod acc base else acc in
      loop (mulmod base base) (Int64.shift_right_logical expn 1) acc
  in
  loop (Int64.rem base p) expn 1L

let generate rng =
  (* Secret exponent in [2, p - 2]. *)
  let raw = Int64.shift_right_logical (Rng.next64 rng) 3 in
  let secret = Int64.add 2L (Int64.rem raw (Int64.sub p 3L)) in
  (secret, powmod generator secret)

let in_group x = Int64.compare x 1L > 0 && Int64.compare x p < 0

let shared_secret mine theirs =
  if not (in_group theirs) then invalid_arg "Dh.shared_secret: public value out of group";
  let element = powmod theirs mine in
  (* KDF over element(8, big-endian) || "fidelius-dh", fed in parts. *)
  Sha256.digest_build (fun ctx ->
      Sha256.feed_u64_be ctx element;
      Sha256.feed_string ctx "fidelius-dh")

let public_to_bytes pub =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 pub;
  b

let public_of_bytes b =
  if Bytes.length b <> 8 then invalid_arg "Dh.public_of_bytes: need 8 bytes";
  Bytes.get_int64_be b 0
