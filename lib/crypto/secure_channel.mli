(** A TLS-like secure channel (handshake + authenticated record layer).

    The paper scopes network I/O out of Fidelius proper on the grounds that
    "network I/O data has been protected by the SSL protocol" (Section
    4.3.5). This module is that assumed substrate, so the repository can
    demonstrate the assumption holding end-to-end over the PV network path:
    an ephemeral DH handshake, direction-separated AES-CTR record keys, and
    encrypt-then-MAC records with sequence numbers (so the driver domain
    can neither read, modify, reorder nor replay traffic undetected). *)

type session

val client_hello : Rng.t -> Dh.secret * bytes
(** Start a handshake: keep the secret, send the message. *)

val server_accept : Rng.t -> client_hello:bytes -> (session * bytes, string) result
(** Process a client hello: returns the server's session and the reply to
    send back. *)

val client_finish : Dh.secret -> server_reply:bytes -> (session, string) result
(** Complete the handshake on the client with the server's reply. *)

val seal : session -> bytes -> bytes
(** Encrypt-then-MAC one record (any payload length); bumps the send
    sequence number. *)

val open_record : session -> bytes -> (bytes, string) result
(** Verify and decrypt the peer's next record; fails on tampering, replay,
    reordering or truncation. *)

val overhead : int
(** Bytes added to each record (header + tag). *)
