(* AES-128 per FIPS-197.

   Two layers live here:

   - The OCaml T-table implementation below is the *executable
     specification*: each Te/Td entry fuses SubBytes + MixColumns for one
     byte position, so a round is 16 table lookups and 16 XORs over four
     32-bit words. ShiftRows is absorbed into which state word each lookup
     reads from. Words are big-endian: byte i of the block is byte i of
     word i/4, so word w holds column w of the FIPS state. The decrypt path
     uses the equivalent inverse cipher: InvMixColumns is pre-applied to
     round keys 1..9 at expansion time. It is exposed as the
     [*_reference] entry points and cross-checked against the C backends
     by the test suite.

   - The production entry points dispatch to aes_stubs.c, which probes
     CPUID once at startup and selects VAES (256-bit), AES-NI (128-bit,
     pipelined 8 blocks) or a portable C T-table core. The C side works
     from [rk], a 352-byte serialized schedule (see aes_stubs.c for the
     layout) that matches [ek]/[dk] byte for byte. *)

let block_size = 16
let key_size = 16

(* C backend entry points (aes_stubs.c). The stubs trust the caller for
   bounds — every OCaml wrapper below validates before calling. *)
external stub_backend : unit -> int = "fidelius_aes_backend" [@@noalloc]
external stub_force : int -> int = "fidelius_aes_force_backend" [@@noalloc]
external stub_cpu_flags : unit -> int = "fidelius_aes_cpu_flags" [@@noalloc]
external stub_expand : bytes -> bytes -> unit = "fidelius_aes_expand" [@@noalloc]

external stub_blocks : bytes -> bool -> bytes -> int -> bytes -> int -> int -> unit
  = "fidelius_aes_blocks_bytecode" "fidelius_aes_blocks"
[@@noalloc]

external stub_ctr : bytes -> int64 -> bytes -> bytes -> int -> unit
  = "fidelius_aes_ctr"
[@@noalloc]

external stub_xex :
  bytes -> bool -> int64 -> int64 -> bytes -> int -> bytes -> int -> int -> unit
  = "fidelius_aes_xex_bytecode" "fidelius_aes_xex"
[@@noalloc]

external stub_xex_sectors :
  bytes -> bool -> int64 -> int64 -> bytes -> int -> bytes -> int -> int -> int -> unit
  = "fidelius_aes_xex_sectors_bytecode" "fidelius_aes_xex_sectors"
[@@noalloc]

(* Probe the CPU once at module initialisation so the first hot-path call
   never pays (or races on) detection. *)
let () = ignore (stub_backend () : int)

let backend_name = function
  | 1 -> "vaes"
  | 2 -> "aes-ni"
  | _ -> "c-portable"

let backend () = backend_name (stub_backend ())

let set_backend mode =
  let want = match mode with `Auto -> 0 | `Vaes -> 1 | `Aesni -> 2 | `Portable -> 3 in
  let got = stub_force want in
  want = 0 || got = want

let cpu_features () =
  let f = stub_cpu_flags () in
  List.filter_map
    (fun (bit, name) -> if f land bit <> 0 then Some name else None)
    [ (1, "aes"); (2, "ssse3"); (4, "sse4.1"); (8, "avx2");
      (16, "vaes"); (32, "sha"); (64, "ymm-os") ]

let sbox = [|
  0x63; 0x7c; 0x77; 0x7b; 0xf2; 0x6b; 0x6f; 0xc5; 0x30; 0x01; 0x67; 0x2b; 0xfe; 0xd7; 0xab; 0x76;
  0xca; 0x82; 0xc9; 0x7d; 0xfa; 0x59; 0x47; 0xf0; 0xad; 0xd4; 0xa2; 0xaf; 0x9c; 0xa4; 0x72; 0xc0;
  0xb7; 0xfd; 0x93; 0x26; 0x36; 0x3f; 0xf7; 0xcc; 0x34; 0xa5; 0xe5; 0xf1; 0x71; 0xd8; 0x31; 0x15;
  0x04; 0xc7; 0x23; 0xc3; 0x18; 0x96; 0x05; 0x9a; 0x07; 0x12; 0x80; 0xe2; 0xeb; 0x27; 0xb2; 0x75;
  0x09; 0x83; 0x2c; 0x1a; 0x1b; 0x6e; 0x5a; 0xa0; 0x52; 0x3b; 0xd6; 0xb3; 0x29; 0xe3; 0x2f; 0x84;
  0x53; 0xd1; 0x00; 0xed; 0x20; 0xfc; 0xb1; 0x5b; 0x6a; 0xcb; 0xbe; 0x39; 0x4a; 0x4c; 0x58; 0xcf;
  0xd0; 0xef; 0xaa; 0xfb; 0x43; 0x4d; 0x33; 0x85; 0x45; 0xf9; 0x02; 0x7f; 0x50; 0x3c; 0x9f; 0xa8;
  0x51; 0xa3; 0x40; 0x8f; 0x92; 0x9d; 0x38; 0xf5; 0xbc; 0xb6; 0xda; 0x21; 0x10; 0xff; 0xf3; 0xd2;
  0xcd; 0x0c; 0x13; 0xec; 0x5f; 0x97; 0x44; 0x17; 0xc4; 0xa7; 0x7e; 0x3d; 0x64; 0x5d; 0x19; 0x73;
  0x60; 0x81; 0x4f; 0xdc; 0x22; 0x2a; 0x90; 0x88; 0x46; 0xee; 0xb8; 0x14; 0xde; 0x5e; 0x0b; 0xdb;
  0xe0; 0x32; 0x3a; 0x0a; 0x49; 0x06; 0x24; 0x5c; 0xc2; 0xd3; 0xac; 0x62; 0x91; 0x95; 0xe4; 0x79;
  0xe7; 0xc8; 0x37; 0x6d; 0x8d; 0xd5; 0x4e; 0xa9; 0x6c; 0x56; 0xf4; 0xea; 0x65; 0x7a; 0xae; 0x08;
  0xba; 0x78; 0x25; 0x2e; 0x1c; 0xa6; 0xb4; 0xc6; 0xe8; 0xdd; 0x74; 0x1f; 0x4b; 0xbd; 0x8b; 0x8a;
  0x70; 0x3e; 0xb5; 0x66; 0x48; 0x03; 0xf6; 0x0e; 0x61; 0x35; 0x57; 0xb9; 0x86; 0xc1; 0x1d; 0x9e;
  0xe1; 0xf8; 0x98; 0x11; 0x69; 0xd9; 0x8e; 0x94; 0x9b; 0x1e; 0x87; 0xe9; 0xce; 0x55; 0x28; 0xdf;
  0x8c; 0xa1; 0x89; 0x0d; 0xbf; 0xe6; 0x42; 0x68; 0x41; 0x99; 0x2d; 0x0f; 0xb0; 0x54; 0xbb; 0x16
|]

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i v -> t.(v) <- i) sbox;
  t

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

let xtime b =
  let b2 = b lsl 1 in
  if b land 0x80 <> 0 then (b2 lxor 0x1b) land 0xff else b2 land 0xff

(* GF(2^8) multiplication, used only at table-build and key-expansion time. *)
let gmul a b =
  let rec loop a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      loop (xtime a) (b lsr 1) acc
  in
  loop a b 0

let ror8 w = ((w lsr 8) lor (w lsl 24)) land 0xFFFFFFFF

(* Te0.(x) = S[x] * (02, 01, 01, 03) as a big-endian column; Te1..Te3 are
   byte rotations of Te0 for the other three byte positions. *)
let te0 = Array.make 256 0
let te1 = Array.make 256 0
let te2 = Array.make 256 0
let te3 = Array.make 256 0

(* Td0.(x) = IS[x] * (0e, 09, 0d, 0b), likewise rotated for Td1..Td3. *)
let td0 = Array.make 256 0
let td1 = Array.make 256 0
let td2 = Array.make 256 0
let td3 = Array.make 256 0

let () =
  for x = 0 to 255 do
    let s = sbox.(x) in
    let s2 = xtime s in
    let s3 = s2 lxor s in
    let e = (s2 lsl 24) lor (s lsl 16) lor (s lsl 8) lor s3 in
    te0.(x) <- e;
    te1.(x) <- ror8 e;
    te2.(x) <- ror8 (ror8 e);
    te3.(x) <- ror8 (ror8 (ror8 e));
    let s = inv_sbox.(x) in
    let d = (gmul s 14 lsl 24) lor (gmul s 9 lsl 16) lor (gmul s 13 lsl 8) lor gmul s 11 in
    td0.(x) <- d;
    td1.(x) <- ror8 d;
    td2.(x) <- ror8 (ror8 d);
    td3.(x) <- ror8 (ror8 (ror8 d))
  done

type key = {
  ek : int array;  (* 44 encryption round-key words, big-endian packed *)
  dk : int array;  (* decryption schedule: reversed rounds, InvMixColumns
                      pre-applied to rounds 1..9 (equivalent inverse cipher) *)
  st : int array;  (* 4-word scratch for the reference round state; reusing
                      it keeps the reference block functions allocation-free
                      (single-threaded) *)
  rk : Bytes.t;    (* the same two schedules serialized for the C backends:
                      bytes 0..175 encryption, 176..351 decryption *)
}

let sub_word w =
  (sbox.((w lsr 24) land 0xff) lsl 24)
  lor (sbox.((w lsr 16) land 0xff) lsl 16)
  lor (sbox.((w lsr 8) land 0xff) lsl 8)
  lor sbox.(w land 0xff)

let rot_word w = ((w lsl 8) lor (w lsr 24)) land 0xFFFFFFFF

(* InvMixColumns on one big-endian column word. *)
let inv_mix_word w =
  let b0 = (w lsr 24) land 0xff and b1 = (w lsr 16) land 0xff
  and b2 = (w lsr 8) land 0xff and b3 = w land 0xff in
  ((gmul b0 14 lxor gmul b1 11 lxor gmul b2 13 lxor gmul b3 9) lsl 24)
  lor ((gmul b0 9 lxor gmul b1 14 lxor gmul b2 11 lxor gmul b3 13) lsl 16)
  lor ((gmul b0 13 lxor gmul b1 9 lxor gmul b2 14 lxor gmul b3 11) lsl 8)
  lor (gmul b0 11 lxor gmul b1 13 lxor gmul b2 9 lxor gmul b3 14)

let expand raw =
  if Bytes.length raw <> key_size then invalid_arg "Aes.expand: key must be 16 bytes";
  let ek = Array.make 44 0 in
  for i = 0 to 3 do
    ek.(i) <-
      (Char.code (Bytes.get raw (4 * i)) lsl 24)
      lor (Char.code (Bytes.get raw ((4 * i) + 1)) lsl 16)
      lor (Char.code (Bytes.get raw ((4 * i) + 2)) lsl 8)
      lor Char.code (Bytes.get raw ((4 * i) + 3))
  done;
  for i = 4 to 43 do
    let t = ek.(i - 1) in
    let t =
      if i land 3 = 0 then sub_word (rot_word t) lxor (rcon.((i / 4) - 1) lsl 24)
      else t
    in
    ek.(i) <- ek.(i - 4) lxor t
  done;
  let dk = Array.make 44 0 in
  for round = 0 to 10 do
    for c = 0 to 3 do
      dk.((4 * round) + c) <- ek.((4 * (10 - round)) + c)
    done
  done;
  for i = 4 to 39 do
    dk.(i) <- inv_mix_word dk.(i)
  done;
  (* The C side re-expands from the raw key (with aeskeygenassist on the
     hardware tiers); the result is byte-identical to ek/dk, which the test
     suite checks via [schedule_bytes]. *)
  let rk = Bytes.create 352 in
  stub_expand raw rk;
  { ek; dk; st = Array.make 4 0; rk }

let schedule_words { ek; _ } = Array.copy ek

let schedule_bytes { rk; _ } = Bytes.copy rk

let load_word src off =
  (Char.code (Bytes.unsafe_get src off) lsl 24)
  lor (Char.code (Bytes.unsafe_get src (off + 1)) lsl 16)
  lor (Char.code (Bytes.unsafe_get src (off + 2)) lsl 8)
  lor Char.code (Bytes.unsafe_get src (off + 3))

let store_word dst off w =
  Bytes.unsafe_set dst off (Char.unsafe_chr ((w lsr 24) land 0xff));
  Bytes.unsafe_set dst (off + 1) (Char.unsafe_chr ((w lsr 16) land 0xff));
  Bytes.unsafe_set dst (off + 2) (Char.unsafe_chr ((w lsr 8) land 0xff));
  Bytes.unsafe_set dst (off + 3) (Char.unsafe_chr (w land 0xff))

let check_range name buf off =
  if off < 0 || off + block_size > Bytes.length buf then
    invalid_arg ("Aes: " ^ name ^ " range out of bounds")

(* The four state words are fully loaded before anything is stored, so
   src and dst may alias (in-place block operations are safe). *)
let encrypt_block_reference_into key ~src ~src_off ~dst ~dst_off =
  check_range "src" src src_off;
  check_range "dst" dst dst_off;
  let ek = key.ek and st = key.st in
  st.(0) <- load_word src src_off lxor ek.(0);
  st.(1) <- load_word src (src_off + 4) lxor ek.(1);
  st.(2) <- load_word src (src_off + 8) lxor ek.(2);
  st.(3) <- load_word src (src_off + 12) lxor ek.(3);
  for round = 1 to 9 do
    let b = 4 * round in
    let s0 = st.(0) and s1 = st.(1) and s2 = st.(2) and s3 = st.(3) in
    st.(0) <- te0.(s0 lsr 24) lxor te1.((s1 lsr 16) land 0xff)
              lxor te2.((s2 lsr 8) land 0xff) lxor te3.(s3 land 0xff) lxor ek.(b);
    st.(1) <- te0.(s1 lsr 24) lxor te1.((s2 lsr 16) land 0xff)
              lxor te2.((s3 lsr 8) land 0xff) lxor te3.(s0 land 0xff) lxor ek.(b + 1);
    st.(2) <- te0.(s2 lsr 24) lxor te1.((s3 lsr 16) land 0xff)
              lxor te2.((s0 lsr 8) land 0xff) lxor te3.(s1 land 0xff) lxor ek.(b + 2);
    st.(3) <- te0.(s3 lsr 24) lxor te1.((s0 lsr 16) land 0xff)
              lxor te2.((s1 lsr 8) land 0xff) lxor te3.(s2 land 0xff) lxor ek.(b + 3)
  done;
  let s0 = st.(0) and s1 = st.(1) and s2 = st.(2) and s3 = st.(3) in
  store_word dst dst_off
    (((sbox.(s0 lsr 24) lsl 24) lor (sbox.((s1 lsr 16) land 0xff) lsl 16)
      lor (sbox.((s2 lsr 8) land 0xff) lsl 8) lor sbox.(s3 land 0xff)) lxor ek.(40));
  store_word dst (dst_off + 4)
    (((sbox.(s1 lsr 24) lsl 24) lor (sbox.((s2 lsr 16) land 0xff) lsl 16)
      lor (sbox.((s3 lsr 8) land 0xff) lsl 8) lor sbox.(s0 land 0xff)) lxor ek.(41));
  store_word dst (dst_off + 8)
    (((sbox.(s2 lsr 24) lsl 24) lor (sbox.((s3 lsr 16) land 0xff) lsl 16)
      lor (sbox.((s0 lsr 8) land 0xff) lsl 8) lor sbox.(s1 land 0xff)) lxor ek.(42));
  store_word dst (dst_off + 12)
    (((sbox.(s3 lsr 24) lsl 24) lor (sbox.((s0 lsr 16) land 0xff) lsl 16)
      lor (sbox.((s1 lsr 8) land 0xff) lsl 8) lor sbox.(s2 land 0xff)) lxor ek.(43))

let decrypt_block_reference_into key ~src ~src_off ~dst ~dst_off =
  check_range "src" src src_off;
  check_range "dst" dst dst_off;
  let dk = key.dk and st = key.st in
  st.(0) <- load_word src src_off lxor dk.(0);
  st.(1) <- load_word src (src_off + 4) lxor dk.(1);
  st.(2) <- load_word src (src_off + 8) lxor dk.(2);
  st.(3) <- load_word src (src_off + 12) lxor dk.(3);
  for round = 1 to 9 do
    let b = 4 * round in
    let s0 = st.(0) and s1 = st.(1) and s2 = st.(2) and s3 = st.(3) in
    st.(0) <- td0.(s0 lsr 24) lxor td1.((s3 lsr 16) land 0xff)
              lxor td2.((s2 lsr 8) land 0xff) lxor td3.(s1 land 0xff) lxor dk.(b);
    st.(1) <- td0.(s1 lsr 24) lxor td1.((s0 lsr 16) land 0xff)
              lxor td2.((s3 lsr 8) land 0xff) lxor td3.(s2 land 0xff) lxor dk.(b + 1);
    st.(2) <- td0.(s2 lsr 24) lxor td1.((s1 lsr 16) land 0xff)
              lxor td2.((s0 lsr 8) land 0xff) lxor td3.(s3 land 0xff) lxor dk.(b + 2);
    st.(3) <- td0.(s3 lsr 24) lxor td1.((s2 lsr 16) land 0xff)
              lxor td2.((s1 lsr 8) land 0xff) lxor td3.(s0 land 0xff) lxor dk.(b + 3)
  done;
  let s0 = st.(0) and s1 = st.(1) and s2 = st.(2) and s3 = st.(3) in
  store_word dst dst_off
    (((inv_sbox.(s0 lsr 24) lsl 24) lor (inv_sbox.((s3 lsr 16) land 0xff) lsl 16)
      lor (inv_sbox.((s2 lsr 8) land 0xff) lsl 8) lor inv_sbox.(s1 land 0xff)) lxor dk.(40));
  store_word dst (dst_off + 4)
    (((inv_sbox.(s1 lsr 24) lsl 24) lor (inv_sbox.((s0 lsr 16) land 0xff) lsl 16)
      lor (inv_sbox.((s3 lsr 8) land 0xff) lsl 8) lor inv_sbox.(s2 land 0xff)) lxor dk.(41));
  store_word dst (dst_off + 8)
    (((inv_sbox.(s2 lsr 24) lsl 24) lor (inv_sbox.((s1 lsr 16) land 0xff) lsl 16)
      lor (inv_sbox.((s0 lsr 8) land 0xff) lsl 8) lor inv_sbox.(s3 land 0xff)) lxor dk.(42));
  store_word dst (dst_off + 12)
    (((inv_sbox.(s3 lsr 24) lsl 24) lor (inv_sbox.((s2 lsr 16) land 0xff) lsl 16)
      lor (inv_sbox.((s1 lsr 8) land 0xff) lsl 8) lor inv_sbox.(s0 land 0xff)) lxor dk.(43))

(* Production block entry points: same bounds checks, C backend body. *)

let encrypt_block_into key ~src ~src_off ~dst ~dst_off =
  check_range "src" src src_off;
  check_range "dst" dst dst_off;
  stub_blocks key.rk true src src_off dst dst_off 1

let decrypt_block_into key ~src ~src_off ~dst ~dst_off =
  check_range "src" src src_off;
  check_range "dst" dst dst_off;
  stub_blocks key.rk false src src_off dst dst_off 1

let check_block plain =
  if Bytes.length plain <> block_size then invalid_arg "Aes: block must be 16 bytes"

let encrypt_block key plain =
  check_block plain;
  let out = Bytes.create block_size in
  encrypt_block_into key ~src:plain ~src_off:0 ~dst:out ~dst_off:0;
  out

let decrypt_block key cipher =
  check_block cipher;
  let out = Bytes.create block_size in
  decrypt_block_into key ~src:cipher ~src_off:0 ~dst:out ~dst_off:0;
  out

let encrypt_block_reference key plain =
  check_block plain;
  let out = Bytes.create block_size in
  encrypt_block_reference_into key ~src:plain ~src_off:0 ~dst:out ~dst_off:0;
  out

let decrypt_block_reference key cipher =
  check_block cipher;
  let out = Bytes.create block_size in
  decrypt_block_reference_into key ~src:cipher ~src_off:0 ~dst:out ~dst_off:0;
  out

(* Bulk entry points — one C call per run of blocks. The C side trusts the
   caller, so all bounds are validated here. *)

let check_run name buf off nbytes =
  if off < 0 || nbytes < 0 || off + nbytes > Bytes.length buf then
    invalid_arg ("Aes: " ^ name ^ " range out of bounds")

let blocks_into key ~encrypt ~src ~src_off ~dst ~dst_off ~nblocks =
  check_run "src" src src_off (nblocks * block_size);
  check_run "dst" dst dst_off (nblocks * block_size);
  stub_blocks key.rk encrypt src src_off dst dst_off nblocks

let ctr_into key ~nonce ~src ~dst ~len =
  check_run "src" src 0 len;
  check_run "dst" dst 0 len;
  stub_ctr key.rk nonce src dst len

let xex_span_into key ~encrypt ~tweak0 ~tweak_step ~src ~src_off ~dst ~dst_off ~len =
  if len mod block_size <> 0 then
    invalid_arg "Aes.xex_span_into: len must be a multiple of 16";
  check_run "src" src src_off len;
  check_run "dst" dst dst_off len;
  stub_xex key.rk encrypt tweak0 tweak_step src src_off dst dst_off len

let xex_sectors_into key ~encrypt ~tweak0 ~sector_stride ~sector_bytes ~src ~src_off ~dst
    ~dst_off ~nsectors =
  if sector_bytes <= 0 || sector_bytes mod block_size <> 0 then
    invalid_arg "Aes.xex_sectors_into: sector_bytes must be a positive multiple of 16";
  if nsectors < 0 then invalid_arg "Aes.xex_sectors_into: nsectors must be >= 0";
  check_run "src" src src_off (nsectors * sector_bytes);
  check_run "dst" dst dst_off (nsectors * sector_bytes);
  stub_xex_sectors key.rk encrypt tweak0 sector_stride src src_off dst dst_off sector_bytes
    nsectors
