(* AES-128 per FIPS-197. The state is a flat 16-int array indexed
   [r + 4 * c] (row r, column c), matching the standard's column-major
   byte order: input byte i lands at row [i mod 4], column [i / 4]. *)

let block_size = 16
let key_size = 16

let sbox = [|
  0x63; 0x7c; 0x77; 0x7b; 0xf2; 0x6b; 0x6f; 0xc5; 0x30; 0x01; 0x67; 0x2b; 0xfe; 0xd7; 0xab; 0x76;
  0xca; 0x82; 0xc9; 0x7d; 0xfa; 0x59; 0x47; 0xf0; 0xad; 0xd4; 0xa2; 0xaf; 0x9c; 0xa4; 0x72; 0xc0;
  0xb7; 0xfd; 0x93; 0x26; 0x36; 0x3f; 0xf7; 0xcc; 0x34; 0xa5; 0xe5; 0xf1; 0x71; 0xd8; 0x31; 0x15;
  0x04; 0xc7; 0x23; 0xc3; 0x18; 0x96; 0x05; 0x9a; 0x07; 0x12; 0x80; 0xe2; 0xeb; 0x27; 0xb2; 0x75;
  0x09; 0x83; 0x2c; 0x1a; 0x1b; 0x6e; 0x5a; 0xa0; 0x52; 0x3b; 0xd6; 0xb3; 0x29; 0xe3; 0x2f; 0x84;
  0x53; 0xd1; 0x00; 0xed; 0x20; 0xfc; 0xb1; 0x5b; 0x6a; 0xcb; 0xbe; 0x39; 0x4a; 0x4c; 0x58; 0xcf;
  0xd0; 0xef; 0xaa; 0xfb; 0x43; 0x4d; 0x33; 0x85; 0x45; 0xf9; 0x02; 0x7f; 0x50; 0x3c; 0x9f; 0xa8;
  0x51; 0xa3; 0x40; 0x8f; 0x92; 0x9d; 0x38; 0xf5; 0xbc; 0xb6; 0xda; 0x21; 0x10; 0xff; 0xf3; 0xd2;
  0xcd; 0x0c; 0x13; 0xec; 0x5f; 0x97; 0x44; 0x17; 0xc4; 0xa7; 0x7e; 0x3d; 0x64; 0x5d; 0x19; 0x73;
  0x60; 0x81; 0x4f; 0xdc; 0x22; 0x2a; 0x90; 0x88; 0x46; 0xee; 0xb8; 0x14; 0xde; 0x5e; 0x0b; 0xdb;
  0xe0; 0x32; 0x3a; 0x0a; 0x49; 0x06; 0x24; 0x5c; 0xc2; 0xd3; 0xac; 0x62; 0x91; 0x95; 0xe4; 0x79;
  0xe7; 0xc8; 0x37; 0x6d; 0x8d; 0xd5; 0x4e; 0xa9; 0x6c; 0x56; 0xf4; 0xea; 0x65; 0x7a; 0xae; 0x08;
  0xba; 0x78; 0x25; 0x2e; 0x1c; 0xa6; 0xb4; 0xc6; 0xe8; 0xdd; 0x74; 0x1f; 0x4b; 0xbd; 0x8b; 0x8a;
  0x70; 0x3e; 0xb5; 0x66; 0x48; 0x03; 0xf6; 0x0e; 0x61; 0x35; 0x57; 0xb9; 0x86; 0xc1; 0x1d; 0x9e;
  0xe1; 0xf8; 0x98; 0x11; 0x69; 0xd9; 0x8e; 0x94; 0x9b; 0x1e; 0x87; 0xe9; 0xce; 0x55; 0x28; 0xdf;
  0x8c; 0xa1; 0x89; 0x0d; 0xbf; 0xe6; 0x42; 0x68; 0x41; 0x99; 0x2d; 0x0f; 0xb0; 0x54; 0xbb; 0x16
|]

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i v -> t.(v) <- i) sbox;
  t

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

type key = int array array
(* 11 round keys, each a flat 16-int array in state order. *)

let xtime b =
  let b2 = b lsl 1 in
  if b land 0x80 <> 0 then (b2 lxor 0x1b) land 0xff else b2 land 0xff

(* GF(2^8) multiplication, used by (Inv)MixColumns. *)
let gmul a b =
  let rec loop a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      loop (xtime a) (b lsr 1) acc
  in
  loop a b 0

let expand raw =
  if Bytes.length raw <> key_size then invalid_arg "Aes.expand: key must be 16 bytes";
  (* w.(i) holds word i of the expanded key as a 4-int array. *)
  let w = Array.make 44 [| 0; 0; 0; 0 |] in
  for i = 0 to 3 do
    w.(i) <-
      [| Char.code (Bytes.get raw (4 * i));
         Char.code (Bytes.get raw ((4 * i) + 1));
         Char.code (Bytes.get raw ((4 * i) + 2));
         Char.code (Bytes.get raw ((4 * i) + 3)) |]
  done;
  for i = 4 to 43 do
    let prev = w.(i - 1) in
    let temp =
      if i mod 4 = 0 then
        [| sbox.(prev.(1)) lxor rcon.((i / 4) - 1);
           sbox.(prev.(2)); sbox.(prev.(3)); sbox.(prev.(0)) |]
      else prev
    in
    let base = w.(i - 4) in
    w.(i) <-
      [| base.(0) lxor temp.(0); base.(1) lxor temp.(1);
         base.(2) lxor temp.(2); base.(3) lxor temp.(3) |]
  done;
  Array.init 11 (fun round ->
      let rk = Array.make 16 0 in
      for c = 0 to 3 do
        let word = w.((4 * round) + c) in
        for r = 0 to 3 do
          rk.(r + (4 * c)) <- word.(r)
        done
      done;
      rk)

let add_round_key state rk =
  for i = 0 to 15 do
    state.(i) <- state.(i) lxor rk.(i)
  done

let sub_bytes state =
  for i = 0 to 15 do
    state.(i) <- sbox.(state.(i))
  done

let inv_sub_bytes state =
  for i = 0 to 15 do
    state.(i) <- inv_sbox.(state.(i))
  done

(* Row r rotates left by r positions across the four columns. *)
let shift_rows state =
  let at r c = state.(r + (4 * c)) in
  let row r a b c d =
    state.(r + 0) <- a; state.(r + 4) <- b; state.(r + 8) <- c; state.(r + 12) <- d
  in
  let r1 = (at 1 1, at 1 2, at 1 3, at 1 0) in
  let r2 = (at 2 2, at 2 3, at 2 0, at 2 1) in
  let r3 = (at 3 3, at 3 0, at 3 1, at 3 2) in
  (let a, b, c, d = r1 in row 1 a b c d);
  (let a, b, c, d = r2 in row 2 a b c d);
  let a, b, c, d = r3 in row 3 a b c d

let inv_shift_rows state =
  let at r c = state.(r + (4 * c)) in
  let row r a b c d =
    state.(r + 0) <- a; state.(r + 4) <- b; state.(r + 8) <- c; state.(r + 12) <- d
  in
  let r1 = (at 1 3, at 1 0, at 1 1, at 1 2) in
  let r2 = (at 2 2, at 2 3, at 2 0, at 2 1) in
  let r3 = (at 3 1, at 3 2, at 3 3, at 3 0) in
  (let a, b, c, d = r1 in row 1 a b c d);
  (let a, b, c, d = r2 in row 2 a b c d);
  let a, b, c, d = r3 in row 3 a b c d

let mix_columns state =
  for c = 0 to 3 do
    let b = 4 * c in
    let s0 = state.(b) and s1 = state.(b + 1) and s2 = state.(b + 2) and s3 = state.(b + 3) in
    state.(b) <- xtime s0 lxor (xtime s1 lxor s1) lxor s2 lxor s3;
    state.(b + 1) <- s0 lxor xtime s1 lxor (xtime s2 lxor s2) lxor s3;
    state.(b + 2) <- s0 lxor s1 lxor xtime s2 lxor (xtime s3 lxor s3);
    state.(b + 3) <- (xtime s0 lxor s0) lxor s1 lxor s2 lxor xtime s3
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let b = 4 * c in
    let s0 = state.(b) and s1 = state.(b + 1) and s2 = state.(b + 2) and s3 = state.(b + 3) in
    state.(b) <- gmul s0 14 lxor gmul s1 11 lxor gmul s2 13 lxor gmul s3 9;
    state.(b + 1) <- gmul s0 9 lxor gmul s1 14 lxor gmul s2 11 lxor gmul s3 13;
    state.(b + 2) <- gmul s0 13 lxor gmul s1 9 lxor gmul s2 14 lxor gmul s3 11;
    state.(b + 3) <- gmul s0 11 lxor gmul s1 13 lxor gmul s2 9 lxor gmul s3 14
  done

let load_state src off =
  Array.init 16 (fun i -> Char.code (Bytes.get src (off + i)))

let store_state state dst off =
  for i = 0 to 15 do
    Bytes.set dst (off + i) (Char.chr state.(i))
  done

let encrypt_block_into key ~src ~src_off ~dst ~dst_off =
  let state = load_state src src_off in
  add_round_key state key.(0);
  for round = 1 to 9 do
    sub_bytes state;
    shift_rows state;
    mix_columns state;
    add_round_key state key.(round)
  done;
  sub_bytes state;
  shift_rows state;
  add_round_key state key.(10);
  store_state state dst dst_off

let decrypt_block_into key ~src ~src_off ~dst ~dst_off =
  let state = load_state src src_off in
  add_round_key state key.(10);
  for round = 9 downto 1 do
    inv_shift_rows state;
    inv_sub_bytes state;
    add_round_key state key.(round);
    inv_mix_columns state
  done;
  inv_shift_rows state;
  inv_sub_bytes state;
  add_round_key state key.(0);
  store_state state dst dst_off

let check_block plain =
  if Bytes.length plain <> block_size then invalid_arg "Aes: block must be 16 bytes"

let encrypt_block key plain =
  check_block plain;
  let out = Bytes.create block_size in
  encrypt_block_into key ~src:plain ~src_off:0 ~dst:out ~dst_off:0;
  out

let decrypt_block key cipher =
  check_block cipher;
  let out = Bytes.create block_size in
  decrypt_block_into key ~src:cipher ~src_off:0 ~dst:out ~dst_off:0;
  out
