(** Diffie–Hellman key agreement over Z_p, p = 2^61 - 1.

    Plays the role of the ECDH exchange in the SEV firmware: the guest owner
    and the platform firmware each hold a keypair; the SEND/RECEIVE master
    secret is derived from the shared group element via a SHA-256 KDF, so a
    hypervisor relaying the public values cannot compute it. The group is
    deliberately small (no bignum library is available in the sealed build
    environment); the simulation needs the protocol shape, not cryptographic
    strength — see DESIGN.md §1. *)

type public = int64
type secret

val p : int64
(** The group modulus, 2^61 - 1. *)

val generate : Rng.t -> secret * public
(** Fresh keypair from the deterministic generator. *)

val shared_secret : secret -> public -> bytes
(** [shared_secret mine theirs] is a 32-byte key: SHA-256 over the shared
    group element with a fixed domain-separation label. Both parties derive
    the same bytes; raises [Invalid_argument] if [theirs] is outside the
    group. *)

val public_to_bytes : public -> bytes
val public_of_bytes : bytes -> public
