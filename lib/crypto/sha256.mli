(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used for SEV launch/send measurements, the Fidelius late-launch integrity
    measurement of the hypervisor text section, the BMT integrity tree's leaf
    and node hashes, and as the compression function behind {!Hmac} and the
    {!Dh} KDF.

    The implementation is the hash-side analogue of the T-table AES fast
    path: the message schedule and block buffer are preallocated inside the
    context and the [_into] entry points write digests into caller-supplied
    buffers so steady-state hashing allocates nothing. Block compression is
    dispatched once at startup to the host CPU's SHA extensions (SHA-NI)
    when available, falling back to a portable C core — mirroring how the
    modelled secure processor offloads hashing to an on-die unit. A
    from-scratch OCaml compression remains as the executable specification:
    {!digest_reference} always uses it, and the test suite cross-checks the
    active backend against it on random inputs.

    {b Thread-safety.} A [ctx] is single-owner mutable state. The one-shot
    helpers ({!digest}, {!digest_into}, {!digest_pair_into}, {!digest_build})
    use a per-domain scratch context, so they are safe to call concurrently
    from different fleet domains but must not be nested inside a
    {!digest_build} callback. *)

val digest_size : int
(** 32 bytes. *)

type ctx
(** Streaming interface for hashing data that arrives in pieces (e.g. the
    per-page SEND_UPDATE measurement accumulation). All feed variants
    append to the same message; the digest depends only on the
    concatenated byte stream, never on the chunking. *)

val backend : string
(** Active compression backend, ["sha-ni"] or ["c-scalar"] — selected once
    at startup; reported for observability. Digests are identical either
    way. *)

val digest : bytes -> bytes
(** [digest data] is the 32-byte SHA-256 hash of [data]. *)

val digest_reference : bytes -> bytes
(** [digest_reference data] hashes with the pure-OCaml from-scratch
    compression regardless of {!backend} — the executable specification the
    test suite checks the accelerated path against. *)

val digest_string : string -> bytes

val digest_into : bytes -> dst:bytes -> dst_off:int -> unit
(** [digest_into data ~dst ~dst_off] writes the digest of [data] into
    [dst] at [dst_off] without allocating. *)

val digest_pair : bytes -> bytes -> bytes
(** [digest_pair a b] is [digest (Bytes.cat a b)] without the
    concatenation — the Merkle node-hash shape. *)

val digest_pair_into : bytes -> bytes -> dst:bytes -> dst_off:int -> unit
(** Zero-allocation {!digest_pair}. [dst] may alias [a] or [b]; inputs are
    consumed before the digest is written. *)

val digest_build : (ctx -> unit) -> bytes
(** [digest_build f] runs [f] over a freshly reset scratch context and
    returns the digest — for call sites that hash a handful of
    heterogeneous parts ([feed] / {!feed_u64_be}) without concatenating
    them first. [f] must not itself call the one-shot helpers. *)

(** {2 Two-stream hashing}

    The hash unit folds two independent messages in lockstep: on SHA-NI
    each stream's [sha256rnds2] chain is serial, so interleaving a second
    stream fills the first one's latency shadow and a pair costs well
    under two single hashes. The BMT batch update hashes dirty leaves and
    dirty interior nodes two at a time through these entry points.

    Results are bit-identical to hashing each stream alone (the test
    suite cross-checks against {!digest_reference}). When the two streams
    have different lengths the calls transparently fall back to two
    sequential one-shot digests. *)

val digest2 : bytes -> bytes -> bytes * bytes
(** [digest2 a b] is [(digest a, digest b)], computed in lockstep when
    the lengths match. *)

val digest2_into :
  bytes -> bytes -> dst1:bytes -> dst1_off:int -> dst2:bytes -> dst2_off:int -> unit
(** Zero-allocation {!digest2}: writes the two digests into the
    caller-supplied buffers. *)

val digest2_prefixed_into :
  prefix1:int64 -> bytes -> dst1:bytes -> dst1_off:int ->
  prefix2:int64 -> bytes -> dst2:bytes -> dst2_off:int -> unit
(** Each stream hashes the eight big-endian bytes of its prefix followed
    by its data ({!feed_u64_be} then {!feed}) — the BMT leaf shape
    ([pfn || page]), two leaves per call. *)

val digest_pair2_into :
  bytes -> bytes -> dst1:bytes -> dst1_off:int ->
  bytes -> bytes -> dst2:bytes -> dst2_off:int -> unit
(** [digest_pair2_into a1 b1 ~dst1 ~dst1_off a2 b2 ~dst2 ~dst2_off] is
    two {!digest_pair_into} calls in lockstep — the Merkle node shape,
    two parents per call. Destinations may alias inputs; both messages
    are staged before either digest is written. *)

val hex : bytes -> string
(** Lowercase hex rendering of a digest (or any byte string). *)

val init : unit -> ctx

val init_reference : unit -> ctx
(** Like {!init} but the context is pinned to the pure-OCaml compression —
    for cross-checking the accelerated backend under arbitrary chunkings. *)

val reset : ctx -> unit
(** Return the context to its initial state so it can hash a fresh
    message — the zero-allocation alternative to {!init} per message. *)

val feed : ctx -> bytes -> unit

val feed_sub : ctx -> bytes -> off:int -> len:int -> unit
(** Feed [len] bytes of [data] starting at [off]. Raises
    [Invalid_argument] if the range leaves the buffer. *)

val feed_string : ctx -> string -> unit

val feed_u64_be : ctx -> int64 -> unit
(** Feed the eight big-endian bytes of the value — equivalent to feeding
    an 8-byte [Bytes.set_int64_be] buffer, without building one. Used for
    the BMT leaf header, measurement page indices and transport nonces. *)

val finalize : ctx -> bytes
(** [finalize ctx] returns the digest; the context must not be fed again
    (but may be {!reset}). *)

val finalize_into : ctx -> dst:bytes -> dst_off:int -> unit
(** Zero-allocation {!finalize}. Raises [Invalid_argument] if
    [dst_off .. dst_off + 31] leaves [dst]. *)
