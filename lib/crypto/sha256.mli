(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used for SEV launch/send measurements, the Fidelius late-launch integrity
    measurement of the hypervisor text section, and as the compression
    function behind {!Hmac} and the {!Dh} KDF. *)

val digest_size : int
(** 32 bytes. *)

val digest : bytes -> bytes
(** [digest data] is the 32-byte SHA-256 hash of [data]. *)

val digest_string : string -> bytes

val hex : bytes -> string
(** Lowercase hex rendering of a digest (or any byte string). *)

type ctx
(** Streaming interface for hashing data that arrives in pieces (e.g. the
    per-page SEND_UPDATE measurement accumulation). *)

val init : unit -> ctx
val feed : ctx -> bytes -> unit
val finalize : ctx -> bytes
(** [finalize ctx] returns the digest; the context must not be fed again. *)
