(** Deterministic pseudo-random generator (splitmix64).

    The whole simulator must be reproducible run-to-run, so every source of
    randomness (key generation, nonces, workload access patterns) draws from
    an explicitly seeded generator instead of [Random]. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed yield identical streams. *)

val next64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] fresh pseudo-random bytes. *)

val split : t -> t
(** [split t] derives an independent generator (and advances [t]). *)
