(* SHA-256 over 32-bit words represented as OCaml ints masked to 32 bits.

   This is the hot hashing core behind the BMT integrity tree, launch
   measurement, HMAC, the DH KDF and migration snapshots, so it follows the
   T-table AES playbook: the message schedule and the pending block are
   preallocated in the context (nothing is allocated per block), and the
   [_into] entry points let steady-state callers hash without allocating.

   Like the real secure processor, block compression runs on a hash unit:
   the C stub ([sha256_stubs.c]) uses the host CPU's SHA extension when
   present and a portable scalar core otherwise. The OCaml compression
   below is the from-scratch executable specification — the test suite
   cross-checks the active backend against it, and a context created with
   [init_reference] is pinned to it. *)

let digest_size = 32

external stub_backend : unit -> int = "fidelius_sha256_backend" [@@noalloc]

external stub_compress : int array -> Bytes.t -> int -> int -> unit
  = "fidelius_sha256_compress_many"
  [@@noalloc]
(* [stub_compress h data off nblocks] folds [nblocks] consecutive 64-byte
   blocks starting at [off] into the eight chaining words of [h]. *)

let backend = match stub_backend () with 1 -> "sha-ni" | _ -> "c-scalar"

let k = [|
  0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1; 0x923f82a4; 0xab1c5ed5;
  0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174;
  0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
  0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147; 0x06ca6351; 0x14292967;
  0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
  0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
  0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f; 0x682e6ff3;
  0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208; 0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2
|]

let mask = 0xffffffff
let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

type ctx = {
  h : int array;            (* 8 chaining words *)
  w : int array;            (* 64-entry message schedule, reused per block *)
  buf : Bytes.t;            (* pending partial block; doubles as pad block *)
  mutable buf_len : int;
  mutable total : int;      (* total bytes fed *)
  reference : bool;         (* pinned to the OCaml compression *)
}

let iv = [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
            0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |]

let make reference =
  { h = Array.copy iv; w = Array.make 64 0; buf = Bytes.create 64;
    buf_len = 0; total = 0; reference }

let init () = make false
let init_reference () = make true

let reset ctx =
  Array.blit iv 0 ctx.h 0 8;
  ctx.buf_len <- 0;
  ctx.total <- 0

(* The OCaml compression. Sums are masked once per stored word, not once
   per addition — every intermediate is a sum of at most five 32-bit
   values, far below the 63-bit int range. *)
let ocaml_compress ctx block off =
  let w = ctx.w in
  for t = 0 to 15 do
    let o = off + (t lsl 2) in
    Array.unsafe_set w t
      ((Char.code (Bytes.unsafe_get block o) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (o + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (o + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (o + 3)))
  done;
  for t = 16 to 63 do
    let w15 = Array.unsafe_get w (t - 15) in
    let w2 = Array.unsafe_get w (t - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3) in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1)
       land mask)
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let ev = !e and av = !a in
    let t1 =
      !hh
      + (rotr ev 6 lxor rotr ev 11 lxor rotr ev 25)
      + ((ev land !f) lxor (lnot ev land !g))
      + Array.unsafe_get k t + Array.unsafe_get w t
    in
    let t2 =
      (rotr av 2 lxor rotr av 13 lxor rotr av 22)
      + ((av land !b) lxor (av land !c) lxor (!b land !c))
    in
    hh := !g; g := !f; f := ev; e := (!d + t1) land mask;
    d := !c; c := !b; b := av; a := (t1 + t2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask; h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask; h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask; h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask; h.(7) <- (h.(7) + !hh) land mask

let compress_blocks ctx data off nblocks =
  if nblocks > 0 then begin
    if ctx.reference then
      for i = 0 to nblocks - 1 do
        ocaml_compress ctx data (off + (i lsl 6))
      done
    else stub_compress ctx.h data off nblocks
  end

let feed_range ctx data off len =
  ctx.total <- ctx.total + len;
  let pos = ref off in
  let stop = off + len in
  (* Fill the pending partial block first. *)
  if ctx.buf_len > 0 then begin
    let take = min (64 - ctx.buf_len) len in
    Bytes.blit data off ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := off + take;
    if ctx.buf_len = 64 then begin
      compress_blocks ctx ctx.buf 0 1;
      ctx.buf_len <- 0
    end
  end;
  let whole = (stop - !pos) asr 6 in
  if whole > 0 then begin
    compress_blocks ctx data !pos whole;
    pos := !pos + (whole lsl 6)
  end;
  if stop - !pos > 0 then begin
    Bytes.blit data !pos ctx.buf 0 (stop - !pos);
    ctx.buf_len <- stop - !pos
  end

let feed ctx data = feed_range ctx data 0 (Bytes.length data)

let feed_sub ctx data ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "Sha256.feed_sub: range out of bounds";
  feed_range ctx data off len

let feed_string ctx s = feed ctx (Bytes.unsafe_of_string s)

(* Eight big-endian bytes without a temporary buffer: in the common case
   (the value fits in the pending block) this is one 64-bit store. *)
let feed_u64_be ctx v =
  if ctx.buf_len <= 56 then begin
    ctx.total <- ctx.total + 8;
    Bytes.set_int64_be ctx.buf ctx.buf_len v;
    ctx.buf_len <- ctx.buf_len + 8;
    if ctx.buf_len = 64 then begin
      compress_blocks ctx ctx.buf 0 1;
      ctx.buf_len <- 0
    end
  end
  else begin
    ctx.total <- ctx.total + 8;
    for i = 7 downto 0 do
      Bytes.unsafe_set ctx.buf ctx.buf_len
        (Char.unsafe_chr
           (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff));
      ctx.buf_len <- ctx.buf_len + 1;
      if ctx.buf_len = 64 then begin
        compress_blocks ctx ctx.buf 0 1;
        ctx.buf_len <- 0
      end
    done
  end

let finalize_into ctx ~dst ~dst_off =
  if dst_off < 0 || dst_off + 32 > Bytes.length dst then
    invalid_arg "Sha256.finalize_into: dst range out of bounds";
  let bitlen = Int64.of_int (ctx.total * 8) in
  (* Pad in the pending block itself: 0x80, zeros, 64-bit bit length. *)
  Bytes.set ctx.buf ctx.buf_len '\x80';
  if ctx.buf_len >= 56 then begin
    Bytes.fill ctx.buf (ctx.buf_len + 1) (63 - ctx.buf_len) '\000';
    compress_blocks ctx ctx.buf 0 1;
    Bytes.fill ctx.buf 0 56 '\000'
  end
  else Bytes.fill ctx.buf (ctx.buf_len + 1) (55 - ctx.buf_len) '\000';
  Bytes.set_int64_be ctx.buf 56 bitlen;
  compress_blocks ctx ctx.buf 0 1;
  ctx.buf_len <- 0;
  let h = ctx.h in
  for i = 0 to 7 do
    let v = h.(i) in
    let o = dst_off + (4 * i) in
    Bytes.unsafe_set dst o (Char.unsafe_chr (v lsr 24));
    Bytes.unsafe_set dst (o + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set dst (o + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set dst (o + 3) (Char.unsafe_chr (v land 0xff))
  done

let finalize ctx =
  let out = Bytes.create 32 in
  finalize_into ctx ~dst:out ~dst_off:0;
  out

(* Per-domain scratch context for the one-shot entry points, so they
   allocate nothing beyond what the caller asked for. Safe across the
   fleet's worker domains (each gets its own); never live across a call
   boundary, so concurrent one-shots cannot observe each other mid-hash. *)
let scratch : ctx Domain.DLS.key = Domain.DLS.new_key init

let digest_into data ~dst ~dst_off =
  let ctx = Domain.DLS.get scratch in
  reset ctx;
  feed ctx data;
  finalize_into ctx ~dst ~dst_off

let digest data =
  let out = Bytes.create 32 in
  digest_into data ~dst:out ~dst_off:0;
  out

let digest_string s = digest (Bytes.of_string s)

let digest_reference data =
  let ctx = init_reference () in
  feed ctx data;
  finalize ctx

let digest_pair_into a b ~dst ~dst_off =
  let ctx = Domain.DLS.get scratch in
  reset ctx;
  feed ctx a;
  feed ctx b;
  finalize_into ctx ~dst ~dst_off

let digest_pair a b =
  let out = Bytes.create 32 in
  digest_pair_into a b ~dst:out ~dst_off:0;
  out

let digest_build f =
  let ctx = Domain.DLS.get scratch in
  reset ctx;
  f ctx;
  let out = Bytes.create 32 in
  finalize_into ctx ~dst:out ~dst_off:0;
  out

(* ---- two-stream hashing -------------------------------------------------

   The hash unit can fold two independent messages in lockstep: on SHA-NI
   each stream's sha256rnds2 chain is serial, so interleaving a second
   stream fills the first one's latency shadow and a pair costs well under
   two single hashes. The BMT batch update rides this — dirty leaves and
   dirty interior nodes are hashed two at a time.

   Both streams must be the same length (every compress call advances them
   block-for-block); the entry points below fall back to two sequential
   one-shot digests when the lengths differ. *)

external stub_compress2 :
  int array -> Bytes.t -> int -> int array -> Bytes.t -> int -> int -> unit
  = "fidelius_sha256_compress2_byte" "fidelius_sha256_compress2"
  [@@noalloc]
(* [stub_compress2 h1 data1 off1 h2 data2 off2 nblocks] folds [nblocks]
   64-byte blocks from each stream into its own chaining state. *)

type two_stream = {
  ts_h1 : int array;
  ts_h2 : int array;
  ts_s1 : Bytes.t;  (* 128-byte staging area: head / padded tail blocks *)
  ts_s2 : Bytes.t;
}

let ts_scratch : two_stream Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { ts_h1 = Array.copy iv;
        ts_h2 = Array.copy iv;
        ts_s1 = Bytes.create 128;
        ts_s2 = Bytes.create 128 })

let store_h h ~dst ~dst_off =
  for i = 0 to 7 do
    let v = Array.unsafe_get h i in
    let o = dst_off + (4 * i) in
    Bytes.unsafe_set dst o (Char.unsafe_chr (v lsr 24));
    Bytes.unsafe_set dst (o + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set dst (o + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set dst (o + 3) (Char.unsafe_chr (v land 0xff))
  done

(* Hash [prefix? || data] on both streams. The data arrays must be the
   same length. The only allocation is the once-per-domain scratch. *)
let two_stream_run ~prefixed ~prefix1 ~prefix2 data1 data2 ~dst1 ~dst1_off
    ~dst2 ~dst2_off =
  if dst1_off < 0 || dst1_off + 32 > Bytes.length dst1
     || dst2_off < 0 || dst2_off + 32 > Bytes.length dst2
  then invalid_arg "Sha256.two_stream: dst range out of bounds";
  let ts = Domain.DLS.get ts_scratch in
  let h1 = ts.ts_h1 and h2 = ts.ts_h2 in
  let s1 = ts.ts_s1 and s2 = ts.ts_s2 in
  Array.blit iv 0 h1 0 8;
  Array.blit iv 0 h2 0 8;
  let n = Bytes.length data1 in
  if Bytes.length data2 <> n then
    invalid_arg "Sha256.two_stream: stream lengths differ";
  let head = if prefixed then 8 else 0 in
  let bitlen = Int64.of_int ((head + n) * 8) in
  (* [pos]: data bytes already folded in; [fill]: bytes staged in s1/s2
     awaiting padding (only on the short-message path). *)
  let pos = ref 0 in
  let fill = ref 0 in
  if prefixed then
    if n >= 56 then begin
      Bytes.set_int64_be s1 0 prefix1;
      Bytes.set_int64_be s2 0 prefix2;
      Bytes.blit data1 0 s1 8 56;
      Bytes.blit data2 0 s2 8 56;
      stub_compress2 h1 s1 0 h2 s2 0 1;
      pos := 56
    end
    else begin
      Bytes.set_int64_be s1 0 prefix1;
      Bytes.set_int64_be s2 0 prefix2;
      Bytes.blit data1 0 s1 8 n;
      Bytes.blit data2 0 s2 8 n;
      fill := 8 + n;
      pos := n
    end;
  (* Whole blocks straight from the data arrays. *)
  let whole = (n - !pos) asr 6 in
  if whole > 0 then begin
    stub_compress2 h1 data1 !pos h2 data2 !pos whole;
    pos := !pos + (whole lsl 6)
  end;
  if !fill = 0 then begin
    let rem = n - !pos in
    Bytes.blit data1 !pos s1 0 rem;
    Bytes.blit data2 !pos s2 0 rem;
    fill := rem
  end;
  (* Pad in the staging area: 0x80, zeros, 64-bit bit length — one block
     when the tail leaves room for the length, two otherwise. *)
  let f = !fill in
  Bytes.set s1 f '\x80';
  Bytes.set s2 f '\x80';
  if f >= 56 then begin
    Bytes.fill s1 (f + 1) (119 - f) '\000';
    Bytes.fill s2 (f + 1) (119 - f) '\000';
    Bytes.set_int64_be s1 120 bitlen;
    Bytes.set_int64_be s2 120 bitlen;
    stub_compress2 h1 s1 0 h2 s2 0 2
  end
  else begin
    Bytes.fill s1 (f + 1) (55 - f) '\000';
    Bytes.fill s2 (f + 1) (55 - f) '\000';
    Bytes.set_int64_be s1 56 bitlen;
    Bytes.set_int64_be s2 56 bitlen;
    stub_compress2 h1 s1 0 h2 s2 0 1
  end;
  store_h h1 ~dst:dst1 ~dst_off:dst1_off;
  store_h h2 ~dst:dst2 ~dst_off:dst2_off

let digest2_into data1 data2 ~dst1 ~dst1_off ~dst2 ~dst2_off =
  if Bytes.length data1 = Bytes.length data2 then
    two_stream_run ~prefixed:false ~prefix1:0L ~prefix2:0L data1 data2 ~dst1
      ~dst1_off ~dst2 ~dst2_off
  else begin
    digest_into data1 ~dst:dst1 ~dst_off:dst1_off;
    digest_into data2 ~dst:dst2 ~dst_off:dst2_off
  end

let digest2 data1 data2 =
  let out1 = Bytes.create 32 and out2 = Bytes.create 32 in
  digest2_into data1 data2 ~dst1:out1 ~dst1_off:0 ~dst2:out2 ~dst2_off:0;
  (out1, out2)

let digest2_prefixed_into ~prefix1 data1 ~dst1 ~dst1_off ~prefix2 data2 ~dst2
    ~dst2_off =
  if Bytes.length data1 = Bytes.length data2 then
    two_stream_run ~prefixed:true ~prefix1 ~prefix2 data1 data2 ~dst1
      ~dst1_off ~dst2 ~dst2_off
  else begin
    let ctx = Domain.DLS.get scratch in
    reset ctx;
    feed_u64_be ctx prefix1;
    feed ctx data1;
    finalize_into ctx ~dst:dst1 ~dst_off:dst1_off;
    reset ctx;
    feed_u64_be ctx prefix2;
    feed ctx data2;
    finalize_into ctx ~dst:dst2 ~dst_off:dst2_off
  end

(* Two digest-pair streams: each message is a1||b1 (resp. a2||b2). The
   four parts must share one length (the BMT feeds 32-byte digests), so
   both messages stay in lockstep; otherwise fall back. *)
let digest_pair2_into a1 b1 ~dst1 ~dst1_off a2 b2 ~dst2 ~dst2_off =
  let la = Bytes.length a1 in
  if Bytes.length b1 = la && Bytes.length a2 = la && Bytes.length b2 = la
     && la <= 55
  then begin
    if dst1_off < 0 || dst1_off + 32 > Bytes.length dst1
       || dst2_off < 0 || dst2_off + 32 > Bytes.length dst2
    then invalid_arg "Sha256.digest_pair2_into: dst range out of bounds";
    let ts = Domain.DLS.get ts_scratch in
    let h1 = ts.ts_h1 and h2 = ts.ts_h2 in
    let s1 = ts.ts_s1 and s2 = ts.ts_s2 in
    Array.blit iv 0 h1 0 8;
    Array.blit iv 0 h2 0 8;
    let msg = 2 * la in
    let bitlen = Int64.of_int (msg * 8) in
    Bytes.blit a1 0 s1 0 la;
    Bytes.blit b1 0 s1 la la;
    Bytes.blit a2 0 s2 0 la;
    Bytes.blit b2 0 s2 la la;
    Bytes.set s1 msg '\x80';
    Bytes.set s2 msg '\x80';
    if msg >= 56 then begin
      (* Two blocks: message spills past the length slot of block one. *)
      Bytes.fill s1 (msg + 1) (119 - msg) '\000';
      Bytes.fill s2 (msg + 1) (119 - msg) '\000';
      Bytes.set_int64_be s1 120 bitlen;
      Bytes.set_int64_be s2 120 bitlen;
      stub_compress2 h1 s1 0 h2 s2 0 2
    end
    else begin
      Bytes.fill s1 (msg + 1) (55 - msg) '\000';
      Bytes.fill s2 (msg + 1) (55 - msg) '\000';
      Bytes.set_int64_be s1 56 bitlen;
      Bytes.set_int64_be s2 56 bitlen;
      stub_compress2 h1 s1 0 h2 s2 0 1
    end;
    store_h h1 ~dst:dst1 ~dst_off:dst1_off;
    store_h h2 ~dst:dst2 ~dst_off:dst2_off
  end
  else begin
    digest_pair_into a1 b1 ~dst:dst1 ~dst_off:dst1_off;
    digest_pair_into a2 b2 ~dst:dst2 ~dst_off:dst2_off
  end

let hex b =
  let buf = Buffer.create (2 * Bytes.length b) in
  Bytes.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
    b;
  Buffer.contents buf
