type wrapped = {
  nonce : int64;
  ciphertext : bytes;
  tag : bytes; (* HMAC over nonce || ciphertext *)
}

(* Derive distinct encryption and MAC keys from the KEK so the same secret
   is never used for both purposes. *)
let enc_label = Bytes.of_string "wrap-enc"
let mac_label = Bytes.of_string "wrap-mac"

let subkeys kek =
  let enc = Sha256.digest_pair kek enc_label in
  let mac = Sha256.digest_pair kek mac_label in
  (Aes.expand (Bytes.sub enc 0 16), Hmac.key mac)

(* The authenticated payload is nonce || ciphertext, fed to the MAC as two
   parts rather than materialized. *)
let feed_payload nonce ciphertext ctx =
  Sha256.feed_u64_be ctx nonce;
  Sha256.feed ctx ciphertext

let nonce_counter = ref 0L

let wrap ~kek key =
  let enc_key, mac_key = subkeys kek in
  nonce_counter := Int64.add !nonce_counter 1L;
  let nonce = !nonce_counter in
  let ciphertext = Modes.ctr_transform enc_key ~nonce key in
  let tag = Hmac.mac_build mac_key (feed_payload nonce ciphertext) in
  { nonce; ciphertext; tag }

let unwrap ~kek w =
  let enc_key, mac_key = subkeys kek in
  if
    Hmac.verify_build mac_key (feed_payload w.nonce w.ciphertext) ~tag:w.tag
      ~tag_off:0
  then Some (Modes.ctr_transform enc_key ~nonce:w.nonce w.ciphertext)
  else None

let to_bytes w =
  let clen = Bytes.length w.ciphertext in
  let b = Bytes.create (8 + 4 + clen + 32) in
  Bytes.set_int64_be b 0 w.nonce;
  Bytes.set_int32_be b 8 (Int32.of_int clen);
  Bytes.blit w.ciphertext 0 b 12 clen;
  Bytes.blit w.tag 0 b (12 + clen) 32;
  b

let of_bytes b =
  if Bytes.length b < 44 then None
  else
    let nonce = Bytes.get_int64_be b 0 in
    let clen = Int32.to_int (Bytes.get_int32_be b 8) in
    if clen < 0 || Bytes.length b <> 12 + clen + 32 then None
    else
      let ciphertext = Bytes.sub b 12 clen in
      let tag = Bytes.sub b (12 + clen) 32 in
      Some { nonce; ciphertext; tag }
