let check_multiple name data =
  if Bytes.length data mod Aes.block_size <> 0 then
    invalid_arg (name ^ ": length must be a multiple of 16")

let ecb_encrypt key data =
  check_multiple "Modes.ecb_encrypt" data;
  let n = Bytes.length data in
  let out = Bytes.create n in
  Aes.blocks_into key ~encrypt:true ~src:data ~src_off:0 ~dst:out ~dst_off:0
    ~nblocks:(n / Aes.block_size);
  out

let ecb_decrypt key data =
  check_multiple "Modes.ecb_decrypt" data;
  let n = Bytes.length data in
  let out = Bytes.create n in
  Aes.blocks_into key ~encrypt:false ~src:data ~src_off:0 ~dst:out ~dst_off:0
    ~nblocks:(n / Aes.block_size);
  out

let ctr_transform key ~nonce data =
  let out = Bytes.create (Bytes.length data) in
  Aes.ctr_into key ~nonce ~src:data ~dst:out ~len:(Bytes.length data);
  out

let check_span name len =
  if len mod 16 <> 0 then invalid_arg (name ^ ": len must be a multiple of 16")

(* The tweak mask for block i is AES_k(tweak0 + i * tweak_step): a cheap XEX
   variant whose only required property here is that the mask depends on the
   position, which defeats ciphertext relocation. [tweak_step] lets a single
   span call reproduce what used to be a per-block loop with per-block tweaks
   (the memory controller steps the tweak by the physical block address).
   Tweak generation, whitening, the block cipher and re-whitening all happen
   inside one [Aes.xex_span_into] C call per span. *)

let xex_encrypt_span key ~tweak0 ~tweak_step ~src ~src_off ~dst ~dst_off ~len =
  check_span "Modes.xex_encrypt_into" len;
  Aes.xex_span_into key ~encrypt:true ~tweak0 ~tweak_step ~src ~src_off ~dst
    ~dst_off ~len

let xex_decrypt_span key ~tweak0 ~tweak_step ~src ~src_off ~dst ~dst_off ~len =
  check_span "Modes.xex_decrypt_into" len;
  Aes.xex_span_into key ~encrypt:false ~tweak0 ~tweak_step ~src ~src_off ~dst
    ~dst_off ~len

let check_sectors name sector_bytes nsectors =
  if sector_bytes <= 0 || sector_bytes mod 16 <> 0 then
    invalid_arg (name ^ ": sector_bytes must be a positive multiple of 16");
  if nsectors < 0 then invalid_arg (name ^ ": nsectors must be >= 0")

let xex_encrypt_sectors key ~tweak0 ~sector_stride ~sector_bytes ~src ~src_off ~dst ~dst_off
    ~nsectors =
  check_sectors "Modes.xex_encrypt_sectors" sector_bytes nsectors;
  Aes.xex_sectors_into key ~encrypt:true ~tweak0 ~sector_stride ~sector_bytes ~src ~src_off
    ~dst ~dst_off ~nsectors

let xex_decrypt_sectors key ~tweak0 ~sector_stride ~sector_bytes ~src ~src_off ~dst ~dst_off
    ~nsectors =
  check_sectors "Modes.xex_decrypt_sectors" sector_bytes nsectors;
  Aes.xex_sectors_into key ~encrypt:false ~tweak0 ~sector_stride ~sector_bytes ~src ~src_off
    ~dst ~dst_off ~nsectors

let xex_encrypt_into key ~tweak ~src ~src_off ~dst ~dst_off ~len =
  xex_encrypt_span key ~tweak0:tweak ~tweak_step:1L ~src ~src_off ~dst ~dst_off ~len

let xex_decrypt_into key ~tweak ~src ~src_off ~dst ~dst_off ~len =
  xex_decrypt_span key ~tweak0:tweak ~tweak_step:1L ~src ~src_off ~dst ~dst_off ~len

let xex_encrypt key ~tweak data =
  check_multiple "Modes.xex_encrypt" data;
  let out = Bytes.create (Bytes.length data) in
  xex_encrypt_into key ~tweak ~src:data ~src_off:0 ~dst:out ~dst_off:0 ~len:(Bytes.length data);
  out

let xex_decrypt key ~tweak data =
  check_multiple "Modes.xex_decrypt" data;
  let out = Bytes.create (Bytes.length data) in
  xex_decrypt_into key ~tweak ~src:data ~src_off:0 ~dst:out ~dst_off:0 ~len:(Bytes.length data);
  out

let cbc_mac key data =
  let n = Bytes.length data in
  (* Zero-padding a copy is equivalent to only XORing the bytes that exist,
     so the accumulator is updated straight from [data] — no padded copy. *)
  let nblocks = if n = 0 then 1 else (n + 15) / 16 in
  let acc = Bytes.make 16 '\000' in
  for blk = 0 to nblocks - 1 do
    let base = blk * 16 in
    let len = min 16 (n - base) in
    for j = 0 to len - 1 do
      let c = Char.code (Bytes.get acc j) lxor Char.code (Bytes.get data (base + j)) in
      Bytes.set acc j (Char.chr c)
    done;
    Aes.encrypt_block_into key ~src:acc ~src_off:0 ~dst:acc ~dst_off:0
  done;
  acc

(* ------------------------------------------------------------------ *)
(* Executable specification: the pre-backend per-block OCaml loops,   *)
(* built on the Aes reference block functions. The test suite checks  *)
(* every backend against these.                                       *)
(* ------------------------------------------------------------------ *)

let ecb_encrypt_reference key data =
  check_multiple "Modes.ecb_encrypt" data;
  let n = Bytes.length data in
  let out = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    Aes.encrypt_block_reference_into key ~src:data ~src_off:!i ~dst:out ~dst_off:!i;
    i := !i + Aes.block_size
  done;
  out

let ecb_decrypt_reference key data =
  check_multiple "Modes.ecb_decrypt" data;
  let n = Bytes.length data in
  let out = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    Aes.decrypt_block_reference_into key ~src:data ~src_off:!i ~dst:out ~dst_off:!i;
    i := !i + Aes.block_size
  done;
  out

let ctr_transform_reference key ~nonce data =
  let n = Bytes.length data in
  let out = Bytes.create n in
  (* One counter block and one keystream buffer reused for every block. *)
  let ctr = Bytes.create 16 in
  let ks = Bytes.create 16 in
  Bytes.set_int64_be ctr 0 nonce;
  let nblocks = (n + 15) / 16 in
  for blk = 0 to nblocks - 1 do
    Bytes.set_int64_be ctr 8 (Int64.of_int blk);
    Aes.encrypt_block_reference_into key ~src:ctr ~src_off:0 ~dst:ks ~dst_off:0;
    let base = blk * 16 in
    let len = min 16 (n - base) in
    for j = 0 to len - 1 do
      let c = Char.code (Bytes.get data (base + j)) lxor Char.code (Bytes.get ks j) in
      Bytes.set out (base + j) (Char.chr c)
    done
  done;
  out

let set_tweak_block tb tweak0 tweak_step blk =
  Bytes.set_int64_be tb 0 (Int64.add tweak0 (Int64.mul tweak_step (Int64.of_int blk)));
  Bytes.set_int64_be tb 8 0xF1DE11F5L

let xor_into mask buf off =
  for j = 0 to 15 do
    let c = Char.code (Bytes.get buf (off + j)) lxor Char.code (Bytes.get mask j) in
    Bytes.set buf (off + j) (Char.chr c)
  done

let xex_encrypt_span_reference key ~tweak0 ~tweak_step ~src ~src_off ~dst ~dst_off ~len =
  check_span "Modes.xex_encrypt_into" len;
  let tb = Bytes.create 16 in
  let mask = Bytes.create 16 in
  for blk = 0 to (len / 16) - 1 do
    set_tweak_block tb tweak0 tweak_step blk;
    Aes.encrypt_block_reference_into key ~src:tb ~src_off:0 ~dst:mask ~dst_off:0;
    let o = blk * 16 in
    Bytes.blit src (src_off + o) dst (dst_off + o) 16;
    xor_into mask dst (dst_off + o);
    Aes.encrypt_block_reference_into key ~src:dst ~src_off:(dst_off + o) ~dst ~dst_off:(dst_off + o);
    xor_into mask dst (dst_off + o)
  done

let xex_decrypt_span_reference key ~tweak0 ~tweak_step ~src ~src_off ~dst ~dst_off ~len =
  check_span "Modes.xex_decrypt_into" len;
  let tb = Bytes.create 16 in
  let mask = Bytes.create 16 in
  for blk = 0 to (len / 16) - 1 do
    set_tweak_block tb tweak0 tweak_step blk;
    Aes.encrypt_block_reference_into key ~src:tb ~src_off:0 ~dst:mask ~dst_off:0;
    let o = blk * 16 in
    Bytes.blit src (src_off + o) dst (dst_off + o) 16;
    xor_into mask dst (dst_off + o);
    Aes.decrypt_block_reference_into key ~src:dst ~src_off:(dst_off + o) ~dst ~dst_off:(dst_off + o);
    xor_into mask dst (dst_off + o)
  done

let xex_sectors_reference span key ~tweak0 ~sector_stride ~sector_bytes ~src ~src_off ~dst
    ~dst_off ~nsectors =
  check_sectors "Modes.xex_sectors_reference" sector_bytes nsectors;
  for i = 0 to nsectors - 1 do
    let o = i * sector_bytes in
    span key
      ~tweak0:(Int64.add tweak0 (Int64.mul sector_stride (Int64.of_int i)))
      ~tweak_step:1L ~src ~src_off:(src_off + o) ~dst ~dst_off:(dst_off + o)
      ~len:sector_bytes
  done

let xex_encrypt_sectors_reference = xex_sectors_reference xex_encrypt_span_reference
let xex_decrypt_sectors_reference = xex_sectors_reference xex_decrypt_span_reference
