let check_multiple name data =
  if Bytes.length data mod Aes.block_size <> 0 then
    invalid_arg (name ^ ": length must be a multiple of 16")

let ecb_encrypt key data =
  check_multiple "Modes.ecb_encrypt" data;
  let n = Bytes.length data in
  let out = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    Aes.encrypt_block_into key ~src:data ~src_off:!i ~dst:out ~dst_off:!i;
    i := !i + Aes.block_size
  done;
  out

let ecb_decrypt key data =
  check_multiple "Modes.ecb_decrypt" data;
  let n = Bytes.length data in
  let out = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    Aes.decrypt_block_into key ~src:data ~src_off:!i ~dst:out ~dst_off:!i;
    i := !i + Aes.block_size
  done;
  out

let counter_block nonce index =
  let b = Bytes.create 16 in
  Bytes.set_int64_be b 0 nonce;
  Bytes.set_int64_be b 8 (Int64.of_int index);
  b

let ctr_transform key ~nonce data =
  let n = Bytes.length data in
  let out = Bytes.create n in
  let nblocks = (n + 15) / 16 in
  for blk = 0 to nblocks - 1 do
    let keystream = Aes.encrypt_block key (counter_block nonce blk) in
    let base = blk * 16 in
    let len = min 16 (n - base) in
    for j = 0 to len - 1 do
      let c = Char.code (Bytes.get data (base + j)) lxor Char.code (Bytes.get keystream j) in
      Bytes.set out (base + j) (Char.chr c)
    done
  done;
  out

(* The tweak mask for block i is AES_k(tweak + i): a cheap XEX variant
   whose only required property here is that the mask depends on the
   position, which defeats ciphertext relocation. *)
let tweak_mask key tweak index =
  let b = Bytes.create 16 in
  Bytes.set_int64_be b 0 (Int64.add tweak (Int64.of_int index));
  Bytes.set_int64_be b 8 0xF1DE11F5L;
  Aes.encrypt_block key b

let xor_into mask buf off =
  for j = 0 to 15 do
    let c = Char.code (Bytes.get buf (off + j)) lxor Char.code (Bytes.get mask j) in
    Bytes.set buf (off + j) (Char.chr c)
  done

let xex_encrypt_into key ~tweak ~src ~src_off ~dst ~dst_off ~len =
  if len mod 16 <> 0 then invalid_arg "Modes.xex_encrypt_into: len must be a multiple of 16";
  let tmp = Bytes.create 16 in
  for blk = 0 to (len / 16) - 1 do
    let mask = tweak_mask key tweak blk in
    Bytes.blit src (src_off + (blk * 16)) tmp 0 16;
    xor_into mask tmp 0;
    Aes.encrypt_block_into key ~src:tmp ~src_off:0 ~dst ~dst_off:(dst_off + (blk * 16));
    xor_into mask dst (dst_off + (blk * 16))
  done

let xex_decrypt_into key ~tweak ~src ~src_off ~dst ~dst_off ~len =
  if len mod 16 <> 0 then invalid_arg "Modes.xex_decrypt_into: len must be a multiple of 16";
  let tmp = Bytes.create 16 in
  for blk = 0 to (len / 16) - 1 do
    let mask = tweak_mask key tweak blk in
    Bytes.blit src (src_off + (blk * 16)) tmp 0 16;
    xor_into mask tmp 0;
    Aes.decrypt_block_into key ~src:tmp ~src_off:0 ~dst ~dst_off:(dst_off + (blk * 16));
    xor_into mask dst (dst_off + (blk * 16))
  done

let xex_encrypt key ~tweak data =
  check_multiple "Modes.xex_encrypt" data;
  let out = Bytes.create (Bytes.length data) in
  xex_encrypt_into key ~tweak ~src:data ~src_off:0 ~dst:out ~dst_off:0 ~len:(Bytes.length data);
  out

let xex_decrypt key ~tweak data =
  check_multiple "Modes.xex_decrypt" data;
  let out = Bytes.create (Bytes.length data) in
  xex_decrypt_into key ~tweak ~src:data ~src_off:0 ~dst:out ~dst_off:0 ~len:(Bytes.length data);
  out

let cbc_mac key data =
  let n = Bytes.length data in
  let padded_len = if n = 0 then 16 else ((n + 15) / 16) * 16 in
  let padded = Bytes.make padded_len '\000' in
  Bytes.blit data 0 padded 0 n;
  let acc = Bytes.make 16 '\000' in
  let i = ref 0 in
  while !i < padded_len do
    for j = 0 to 15 do
      let c = Char.code (Bytes.get acc j) lxor Char.code (Bytes.get padded (!i + j)) in
      Bytes.set acc j (Char.chr c)
    done;
    Aes.encrypt_block_into key ~src:acc ~src_off:0 ~dst:acc ~dst_off:0;
    i := !i + 16
  done;
  acc
