let block_size = 64

(* A prepared key is the two padded blocks HMAC actually feeds: ipad =
   K' xor 0x36.., opad = K' xor 0x5c.. — derived once instead of per MAC. *)
type key = { ipad : Bytes.t; opad : Bytes.t }

let key raw =
  let raw = if Bytes.length raw > block_size then Sha256.digest raw else raw in
  let ipad = Bytes.make block_size '\x36' in
  let opad = Bytes.make block_size '\x5c' in
  Bytes.iteri
    (fun i c ->
      Bytes.set ipad i (Char.chr (Char.code c lxor 0x36));
      Bytes.set opad i (Char.chr (Char.code c lxor 0x5c)))
    raw;
  { ipad; opad }

(* Per-domain scratch: a hash context plus buffers for the inner digest and
   the recomputed tag, so steady-state MACs allocate nothing. *)
type scratch_state = { ctx : Sha256.ctx; inner : Bytes.t; tag : Bytes.t }

let scratch : scratch_state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { ctx = Sha256.init (); inner = Bytes.create 32; tag = Bytes.create 32 })

(* [fill_tag k f dst dst_off] computes HMAC(k, message fed by [f]) into
   [dst]. [f] receives the running inner hash context; it must only feed. *)
let fill_tag k f dst dst_off =
  let s = Domain.DLS.get scratch in
  Sha256.reset s.ctx;
  Sha256.feed s.ctx k.ipad;
  f s.ctx;
  Sha256.finalize_into s.ctx ~dst:s.inner ~dst_off:0;
  Sha256.reset s.ctx;
  Sha256.feed s.ctx k.opad;
  Sha256.feed s.ctx s.inner;
  Sha256.finalize_into s.ctx ~dst ~dst_off

let mac_build_into k f ~dst ~dst_off = fill_tag k f dst dst_off

let mac_build k f =
  let out = Bytes.create 32 in
  fill_tag k f out 0;
  out

let mac_with k data = mac_build k (fun ctx -> Sha256.feed ctx data)

let mac ~key:raw data = mac_with (key raw) data

(* Fold over every byte rather than short-circuiting. *)
let eq_32 a a_off b b_off =
  let diff = ref 0 in
  for i = 0 to 31 do
    diff :=
      !diff
      lor (Char.code (Bytes.get a (a_off + i))
          lxor Char.code (Bytes.get b (b_off + i)))
  done;
  !diff = 0

let verify_build k f ~tag ~tag_off =
  if tag_off < 0 || tag_off + 32 > Bytes.length tag then false
  else begin
    let s = Domain.DLS.get scratch in
    fill_tag k f s.tag 0;
    eq_32 s.tag 0 tag tag_off
  end

let verify_with k ~tag data =
  Bytes.length tag = 32
  && verify_build k (fun ctx -> Sha256.feed ctx data) ~tag ~tag_off:0

let verify ~key:raw ~tag data = verify_with (key raw) ~tag data
