type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

(* splitmix64 finalizer: state += gamma; z = mix(state). *)
let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (next64 t) land max_int in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b

let split t = create (next64 t)
