/* AES-128 bulk cores for Aes/Modes — the silicon of the modelled SME/SEV
 * memory-encryption engine. Three backends, selected once at startup:
 *
 *   - VAES: 256-bit aesenc/aesdec (VAES + AVX2), eight blocks per round
 *     across four ymm registers.
 *   - AES-NI: 128-bit aesenc/aesdec pipelined eight independent blocks
 *     per round so the ~4-cycle instruction latency is hidden.
 *   - A portable T-table C core, used everywhere else.
 *
 * All three compute exactly FIPS-197; the OCaml side keeps its own T-table
 * implementation as the executable specification and the test suite
 * cross-checks every backend against it.
 *
 * Contract with the OCaml side: the key schedule is a 352-byte OCaml Bytes
 * value ("rk") laid out as
 *
 *   bytes   0..175  encryption round keys w0..w10, FIPS byte order
 *   bytes 176..351  decryption round keys in application order — round r
 *                   is w(10-r), with InvMixColumns (aesimc) pre-applied to
 *                   rounds 1..9 (the equivalent inverse cipher)
 *
 * which is simultaneously what aesenc/aesdec load and what the big-endian
 * word loads of the portable core expect, and matches the OCaml ek/dk
 * arrays byte for byte. Entry points never allocate on the OCaml heap
 * ([@@noalloc]) and trust the caller for bounds (validated OCaml-side).
 *
 * Span-granular XEX is the hot entry point: one call per 4 KiB page that
 * generates the stride-advancing tweak blocks (tweak0 + i*tweak_step ||
 * 0xF1DE11F5), encrypts them into masks, whitens, en/decrypts and
 * re-whitens — all in-register for the SIMD tiers.
 */

#include <stdint.h>
#include <stddef.h>
#include <string.h>

#include <caml/mlvalues.h>

/* Tweak-block low quadword, shared with Modes.set_tweak_block. */
#define XEX_TWEAK_TAG 0xF1DE11F5ULL

enum {
  BK_UNDETECTED = 0,
  BK_VAES = 1,
  BK_AESNI = 2,
  BK_PORTABLE = 3,
};

/* CPU feature bitmask reported to OCaml (Aes.cpu_features). */
#define F_AES    (1 << 0)
#define F_SSSE3  (1 << 1)
#define F_SSE41  (1 << 2)
#define F_AVX2   (1 << 3)
#define F_VAES   (1 << 4)
#define F_SHA    (1 << 5)
#define F_YMM_OS (1 << 6)

static inline uint32_t load_be32(const uint8_t *p)
{
  return ((uint32_t)p[0] << 24) | ((uint32_t)p[1] << 16) |
         ((uint32_t)p[2] << 8) | (uint32_t)p[3];
}

static inline void store_be32(uint8_t *p, uint32_t v)
{
  p[0] = (uint8_t)(v >> 24);
  p[1] = (uint8_t)(v >> 16);
  p[2] = (uint8_t)(v >> 8);
  p[3] = (uint8_t)v;
}

static inline void store_be64(uint8_t *p, uint64_t v)
{
  store_be32(p, (uint32_t)(v >> 32));
  store_be32(p + 4, (uint32_t)v);
}

/* ------------------------------------------------------------------ */
/* Portable T-table core (and the shared C key expansion)             */
/* ------------------------------------------------------------------ */

static const uint8_t sbox[256] = {
  0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
  0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
  0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
  0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
  0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
  0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
  0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
  0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
  0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
  0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
  0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
  0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
  0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
  0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
  0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
  0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
  0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
  0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
  0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
  0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
  0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
  0xb0, 0x54, 0xbb, 0x16,
};

static const uint8_t rcon[10] = {
  0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36,
};

static uint8_t inv_sbox[256];
static uint32_t Te0[256], Te1[256], Te2[256], Te3[256];
static uint32_t Td0[256], Td1[256], Td2[256], Td3[256];
static int tables_ready = 0;

static inline uint8_t xtime(uint8_t b)
{
  return (uint8_t)((b << 1) ^ ((b & 0x80) ? 0x1b : 0x00));
}

static uint8_t gmul(uint8_t a, uint8_t b)
{
  uint8_t acc = 0;
  while (b) {
    if (b & 1) acc ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return acc;
}

static inline uint32_t ror8(uint32_t w)
{
  return (w >> 8) | (w << 24);
}

static void init_tables(void)
{
  if (tables_ready) return;
  for (int x = 0; x < 256; x++) inv_sbox[sbox[x]] = (uint8_t)x;
  for (int x = 0; x < 256; x++) {
    uint8_t s = sbox[x];
    uint8_t s2 = xtime(s);
    uint8_t s3 = (uint8_t)(s2 ^ s);
    uint32_t e = ((uint32_t)s2 << 24) | ((uint32_t)s << 16) |
                 ((uint32_t)s << 8) | (uint32_t)s3;
    Te0[x] = e;
    Te1[x] = ror8(e);
    Te2[x] = ror8(ror8(e));
    Te3[x] = ror8(ror8(ror8(e)));
    uint8_t is = inv_sbox[x];
    uint32_t d = ((uint32_t)gmul(is, 14) << 24) | ((uint32_t)gmul(is, 9) << 16) |
                 ((uint32_t)gmul(is, 13) << 8) | (uint32_t)gmul(is, 11);
    Td0[x] = d;
    Td1[x] = ror8(d);
    Td2[x] = ror8(ror8(d));
    Td3[x] = ror8(ror8(ror8(d)));
  }
  tables_ready = 1;
}

static inline uint32_t inv_mix_word(uint32_t w)
{
  uint8_t b0 = (uint8_t)(w >> 24), b1 = (uint8_t)(w >> 16);
  uint8_t b2 = (uint8_t)(w >> 8), b3 = (uint8_t)w;
  return ((uint32_t)(gmul(b0, 14) ^ gmul(b1, 11) ^ gmul(b2, 13) ^ gmul(b3, 9)) << 24)
       | ((uint32_t)(gmul(b0, 9) ^ gmul(b1, 14) ^ gmul(b2, 11) ^ gmul(b3, 13)) << 16)
       | ((uint32_t)(gmul(b0, 13) ^ gmul(b1, 9) ^ gmul(b2, 14) ^ gmul(b3, 11)) << 8)
       | (uint32_t)(gmul(b0, 11) ^ gmul(b1, 13) ^ gmul(b2, 9) ^ gmul(b3, 14));
}

static inline uint32_t sub_word(uint32_t w)
{
  return ((uint32_t)sbox[(w >> 24) & 0xff] << 24) |
         ((uint32_t)sbox[(w >> 16) & 0xff] << 16) |
         ((uint32_t)sbox[(w >> 8) & 0xff] << 8) |
         (uint32_t)sbox[w & 0xff];
}

static inline uint32_t rot_word(uint32_t w)
{
  return (w << 8) | (w >> 24);
}

static void portable_expand(const uint8_t *raw, uint8_t *rk)
{
  uint32_t w[44], dw[44];
  init_tables();
  for (int i = 0; i < 4; i++) w[i] = load_be32(raw + 4 * i);
  for (int i = 4; i < 44; i++) {
    uint32_t t = w[i - 1];
    if ((i & 3) == 0)
      t = sub_word(rot_word(t)) ^ ((uint32_t)rcon[i / 4 - 1] << 24);
    w[i] = w[i - 4] ^ t;
  }
  for (int r = 0; r <= 10; r++)
    for (int c = 0; c < 4; c++) dw[4 * r + c] = w[4 * (10 - r) + c];
  for (int i = 4; i < 40; i++) dw[i] = inv_mix_word(dw[i]);
  for (int i = 0; i < 44; i++) {
    store_be32(rk + 4 * i, w[i]);
    store_be32(rk + 176 + 4 * i, dw[i]);
  }
}

static void portable_enc_block(const uint8_t *rk, const uint8_t *src,
                               uint8_t *dst)
{
  uint32_t s0 = load_be32(src) ^ load_be32(rk);
  uint32_t s1 = load_be32(src + 4) ^ load_be32(rk + 4);
  uint32_t s2 = load_be32(src + 8) ^ load_be32(rk + 8);
  uint32_t s3 = load_be32(src + 12) ^ load_be32(rk + 12);
  for (int r = 1; r <= 9; r++) {
    const uint8_t *k = rk + 16 * r;
    uint32_t t0 = Te0[s0 >> 24] ^ Te1[(s1 >> 16) & 0xff] ^
                  Te2[(s2 >> 8) & 0xff] ^ Te3[s3 & 0xff] ^ load_be32(k);
    uint32_t t1 = Te0[s1 >> 24] ^ Te1[(s2 >> 16) & 0xff] ^
                  Te2[(s3 >> 8) & 0xff] ^ Te3[s0 & 0xff] ^ load_be32(k + 4);
    uint32_t t2 = Te0[s2 >> 24] ^ Te1[(s3 >> 16) & 0xff] ^
                  Te2[(s0 >> 8) & 0xff] ^ Te3[s1 & 0xff] ^ load_be32(k + 8);
    uint32_t t3 = Te0[s3 >> 24] ^ Te1[(s0 >> 16) & 0xff] ^
                  Te2[(s1 >> 8) & 0xff] ^ Te3[s2 & 0xff] ^ load_be32(k + 12);
    s0 = t0; s1 = t1; s2 = t2; s3 = t3;
  }
  const uint8_t *k = rk + 160;
  store_be32(dst,
             (((uint32_t)sbox[s0 >> 24] << 24) |
              ((uint32_t)sbox[(s1 >> 16) & 0xff] << 16) |
              ((uint32_t)sbox[(s2 >> 8) & 0xff] << 8) |
              (uint32_t)sbox[s3 & 0xff]) ^ load_be32(k));
  store_be32(dst + 4,
             (((uint32_t)sbox[s1 >> 24] << 24) |
              ((uint32_t)sbox[(s2 >> 16) & 0xff] << 16) |
              ((uint32_t)sbox[(s3 >> 8) & 0xff] << 8) |
              (uint32_t)sbox[s0 & 0xff]) ^ load_be32(k + 4));
  store_be32(dst + 8,
             (((uint32_t)sbox[s2 >> 24] << 24) |
              ((uint32_t)sbox[(s3 >> 16) & 0xff] << 16) |
              ((uint32_t)sbox[(s0 >> 8) & 0xff] << 8) |
              (uint32_t)sbox[s1 & 0xff]) ^ load_be32(k + 8));
  store_be32(dst + 12,
             (((uint32_t)sbox[s3 >> 24] << 24) |
              ((uint32_t)sbox[(s0 >> 16) & 0xff] << 16) |
              ((uint32_t)sbox[(s1 >> 8) & 0xff] << 8) |
              (uint32_t)sbox[s2 & 0xff]) ^ load_be32(k + 12));
}

static void portable_dec_block(const uint8_t *rk, const uint8_t *src,
                               uint8_t *dst)
{
  const uint8_t *dk = rk + 176;
  uint32_t s0 = load_be32(src) ^ load_be32(dk);
  uint32_t s1 = load_be32(src + 4) ^ load_be32(dk + 4);
  uint32_t s2 = load_be32(src + 8) ^ load_be32(dk + 8);
  uint32_t s3 = load_be32(src + 12) ^ load_be32(dk + 12);
  for (int r = 1; r <= 9; r++) {
    const uint8_t *k = dk + 16 * r;
    uint32_t t0 = Td0[s0 >> 24] ^ Td1[(s3 >> 16) & 0xff] ^
                  Td2[(s2 >> 8) & 0xff] ^ Td3[s1 & 0xff] ^ load_be32(k);
    uint32_t t1 = Td0[s1 >> 24] ^ Td1[(s0 >> 16) & 0xff] ^
                  Td2[(s3 >> 8) & 0xff] ^ Td3[s2 & 0xff] ^ load_be32(k + 4);
    uint32_t t2 = Td0[s2 >> 24] ^ Td1[(s1 >> 16) & 0xff] ^
                  Td2[(s0 >> 8) & 0xff] ^ Td3[s3 & 0xff] ^ load_be32(k + 8);
    uint32_t t3 = Td0[s3 >> 24] ^ Td1[(s2 >> 16) & 0xff] ^
                  Td2[(s1 >> 8) & 0xff] ^ Td3[s0 & 0xff] ^ load_be32(k + 12);
    s0 = t0; s1 = t1; s2 = t2; s3 = t3;
  }
  const uint8_t *k = dk + 160;
  store_be32(dst,
             (((uint32_t)inv_sbox[s0 >> 24] << 24) |
              ((uint32_t)inv_sbox[(s3 >> 16) & 0xff] << 16) |
              ((uint32_t)inv_sbox[(s2 >> 8) & 0xff] << 8) |
              (uint32_t)inv_sbox[s1 & 0xff]) ^ load_be32(k));
  store_be32(dst + 4,
             (((uint32_t)inv_sbox[s1 >> 24] << 24) |
              ((uint32_t)inv_sbox[(s0 >> 16) & 0xff] << 16) |
              ((uint32_t)inv_sbox[(s3 >> 8) & 0xff] << 8) |
              (uint32_t)inv_sbox[s2 & 0xff]) ^ load_be32(k + 4));
  store_be32(dst + 8,
             (((uint32_t)inv_sbox[s2 >> 24] << 24) |
              ((uint32_t)inv_sbox[(s1 >> 16) & 0xff] << 16) |
              ((uint32_t)inv_sbox[(s0 >> 8) & 0xff] << 8) |
              (uint32_t)inv_sbox[s3 & 0xff]) ^ load_be32(k + 8));
  store_be32(dst + 12,
             (((uint32_t)inv_sbox[s3 >> 24] << 24) |
              ((uint32_t)inv_sbox[(s2 >> 16) & 0xff] << 16) |
              ((uint32_t)inv_sbox[(s1 >> 8) & 0xff] << 8) |
              (uint32_t)inv_sbox[s0 & 0xff]) ^ load_be32(k + 12));
}

/* The block functions load the whole source block before storing, so exact
 * src == dst aliasing is safe throughout — matching the OCaml reference. */

static void portable_ecb(const uint8_t *rk, int enc, const uint8_t *src,
                         uint8_t *dst, long nblocks)
{
  for (long i = 0; i < nblocks; i++) {
    if (enc) portable_enc_block(rk, src + 16 * i, dst + 16 * i);
    else portable_dec_block(rk, src + 16 * i, dst + 16 * i);
  }
}

static void portable_ctr(const uint8_t *rk, uint64_t nonce,
                         const uint8_t *src, uint8_t *dst, long len)
{
  uint8_t ctr[16], ks[16];
  store_be64(ctr, nonce);
  long nblocks = (len + 15) / 16;
  for (long blk = 0; blk < nblocks; blk++) {
    store_be64(ctr + 8, (uint64_t)blk);
    portable_enc_block(rk, ctr, ks);
    long base = 16 * blk;
    long n = len - base < 16 ? len - base : 16;
    for (long j = 0; j < n; j++) dst[base + j] = src[base + j] ^ ks[j];
  }
}

static void portable_xex(const uint8_t *rk, int enc, uint64_t t0,
                         uint64_t step, const uint8_t *src, uint8_t *dst,
                         long nblocks)
{
  uint8_t tb[16], mask[16], tmp[16];
  store_be64(tb + 8, XEX_TWEAK_TAG);
  for (long blk = 0; blk < nblocks; blk++) {
    store_be64(tb, t0 + (uint64_t)blk * step);
    portable_enc_block(rk, tb, mask);
    const uint8_t *s = src + 16 * blk;
    for (int j = 0; j < 16; j++) tmp[j] = s[j] ^ mask[j];
    if (enc) portable_enc_block(rk, tmp, tmp);
    else portable_dec_block(rk, tmp, tmp);
    uint8_t *d = dst + 16 * blk;
    for (int j = 0; j < 16; j++) d[j] = tmp[j] ^ mask[j];
  }
}

/* ------------------------------------------------------------------ */
/* AES-NI core (x86-64, 128-bit, pipelined 8 blocks per round)        */
/* ------------------------------------------------------------------ */

#if defined(__x86_64__) && defined(__GNUC__)
#define FIDELIUS_AESNI_POSSIBLE 1

#include <cpuid.h>
#include <immintrin.h>

/* Apply one round instruction to all eight in-flight blocks. The eight
 * chains are independent, so the CPU overlaps the aesenc latencies. */
#define B8(op, k)                                                           \
  do {                                                                      \
    b0 = op(b0, k); b1 = op(b1, k); b2 = op(b2, k); b3 = op(b3, k);         \
    b4 = op(b4, k); b5 = op(b5, k); b6 = op(b6, k); b7 = op(b7, k);         \
  } while (0)

#define M8(op, k)                                                           \
  do {                                                                      \
    m0 = op(m0, k); m1 = op(m1, k); m2 = op(m2, k); m3 = op(m3, k);         \
    m4 = op(m4, k); m5 = op(m5, k); m6 = op(m6, k); m7 = op(m7, k);         \
  } while (0)

#define LOAD8(p)                                                            \
  do {                                                                      \
    b0 = _mm_loadu_si128((const __m128i *)((p) + 0));                       \
    b1 = _mm_loadu_si128((const __m128i *)((p) + 16));                      \
    b2 = _mm_loadu_si128((const __m128i *)((p) + 32));                      \
    b3 = _mm_loadu_si128((const __m128i *)((p) + 48));                      \
    b4 = _mm_loadu_si128((const __m128i *)((p) + 64));                      \
    b5 = _mm_loadu_si128((const __m128i *)((p) + 80));                      \
    b6 = _mm_loadu_si128((const __m128i *)((p) + 96));                      \
    b7 = _mm_loadu_si128((const __m128i *)((p) + 112));                     \
  } while (0)

#define STORE8(p)                                                           \
  do {                                                                      \
    _mm_storeu_si128((__m128i *)((p) + 0), b0);                             \
    _mm_storeu_si128((__m128i *)((p) + 16), b1);                            \
    _mm_storeu_si128((__m128i *)((p) + 32), b2);                            \
    _mm_storeu_si128((__m128i *)((p) + 48), b3);                            \
    _mm_storeu_si128((__m128i *)((p) + 64), b4);                            \
    _mm_storeu_si128((__m128i *)((p) + 80), b5);                            \
    _mm_storeu_si128((__m128i *)((p) + 96), b6);                            \
    _mm_storeu_si128((__m128i *)((p) + 112), b7);                           \
  } while (0)

__attribute__((target("aes")))
static inline void aesni_load_keys(const uint8_t *sched, __m128i K[11])
{
  for (int i = 0; i < 11; i++)
    K[i] = _mm_loadu_si128((const __m128i *)(sched + 16 * i));
}

__attribute__((target("aes")))
static inline __m128i aesni_enc1(const __m128i K[11], __m128i b)
{
  b = _mm_xor_si128(b, K[0]);
  for (int r = 1; r <= 9; r++) b = _mm_aesenc_si128(b, K[r]);
  return _mm_aesenclast_si128(b, K[10]);
}

__attribute__((target("aes")))
static inline __m128i aesni_dec1(const __m128i K[11], __m128i b)
{
  b = _mm_xor_si128(b, K[0]);
  for (int r = 1; r <= 9; r++) b = _mm_aesdec_si128(b, K[r]);
  return _mm_aesdeclast_si128(b, K[10]);
}

__attribute__((target("aes")))
static void aesni_ecb(const uint8_t *rk, int enc, const uint8_t *src,
                      uint8_t *dst, long nblocks)
{
  __m128i K[11];
  aesni_load_keys(enc ? rk : rk + 176, K);
  long i = 0;
  for (; i + 8 <= nblocks; i += 8) {
    __m128i b0, b1, b2, b3, b4, b5, b6, b7;
    LOAD8(src + 16 * i);
    B8(_mm_xor_si128, K[0]);
    if (enc) {
      for (int r = 1; r <= 9; r++) B8(_mm_aesenc_si128, K[r]);
      B8(_mm_aesenclast_si128, K[10]);
    } else {
      for (int r = 1; r <= 9; r++) B8(_mm_aesdec_si128, K[r]);
      B8(_mm_aesdeclast_si128, K[10]);
    }
    STORE8(dst + 16 * i);
  }
  for (; i < nblocks; i++) {
    __m128i b = _mm_loadu_si128((const __m128i *)(src + 16 * i));
    b = enc ? aesni_enc1(K, b) : aesni_dec1(K, b);
    _mm_storeu_si128((__m128i *)(dst + 16 * i), b);
  }
}

__attribute__((target("aes")))
static void aesni_ctr(const uint8_t *rk, uint64_t nonce, uint64_t blk0,
                      const uint8_t *src, uint8_t *dst, long len)
{
  __m128i K[11];
  aesni_load_keys(rk, K);
  long nfull = len / 16;
  uint8_t cb[128];
  for (int j = 0; j < 8; j++) store_be64(cb + 16 * j, nonce);
  long i = 0;
  for (; i + 8 <= nfull; i += 8) {
    for (int j = 0; j < 8; j++)
      store_be64(cb + 16 * j + 8, blk0 + (uint64_t)(i + j));
    __m128i b0, b1, b2, b3, b4, b5, b6, b7;
    LOAD8(cb);
    B8(_mm_xor_si128, K[0]);
    for (int r = 1; r <= 9; r++) B8(_mm_aesenc_si128, K[r]);
    B8(_mm_aesenclast_si128, K[10]);
    const uint8_t *s = src + 16 * i;
    b0 = _mm_xor_si128(b0, _mm_loadu_si128((const __m128i *)(s + 0)));
    b1 = _mm_xor_si128(b1, _mm_loadu_si128((const __m128i *)(s + 16)));
    b2 = _mm_xor_si128(b2, _mm_loadu_si128((const __m128i *)(s + 32)));
    b3 = _mm_xor_si128(b3, _mm_loadu_si128((const __m128i *)(s + 48)));
    b4 = _mm_xor_si128(b4, _mm_loadu_si128((const __m128i *)(s + 64)));
    b5 = _mm_xor_si128(b5, _mm_loadu_si128((const __m128i *)(s + 80)));
    b6 = _mm_xor_si128(b6, _mm_loadu_si128((const __m128i *)(s + 96)));
    b7 = _mm_xor_si128(b7, _mm_loadu_si128((const __m128i *)(s + 112)));
    STORE8(dst + 16 * i);
  }
  for (; i < nfull; i++) {
    store_be64(cb + 8, blk0 + (uint64_t)i);
    __m128i ks = aesni_enc1(K, _mm_loadu_si128((const __m128i *)cb));
    __m128i b = _mm_loadu_si128((const __m128i *)(src + 16 * i));
    _mm_storeu_si128((__m128i *)(dst + 16 * i), _mm_xor_si128(b, ks));
  }
  long tail = len - 16 * nfull;
  if (tail > 0) {
    uint8_t ks[16];
    store_be64(cb + 8, blk0 + (uint64_t)nfull);
    _mm_storeu_si128((__m128i *)ks,
                     aesni_enc1(K, _mm_loadu_si128((const __m128i *)cb)));
    for (long j = 0; j < tail; j++)
      dst[16 * nfull + j] = src[16 * nfull + j] ^ ks[j];
  }
}

__attribute__((target("aes")))
static void aesni_xex(const uint8_t *rk, int enc, uint64_t t0, uint64_t step,
                      const uint8_t *src, uint8_t *dst, long nblocks)
{
  __m128i KE[11], KD[11];
  aesni_load_keys(rk, KE); /* masks always use the encryption schedule */
  const __m128i *KC = KE;
  if (!enc) {
    aesni_load_keys(rk + 176, KD);
    KC = KD;
  }
  uint8_t tb[128];
  for (int j = 0; j < 8; j++) store_be64(tb + 16 * j + 8, XEX_TWEAK_TAG);
  long i = 0;
  for (; i + 8 <= nblocks; i += 8) {
    for (int j = 0; j < 8; j++)
      store_be64(tb + 16 * j, t0 + (uint64_t)(i + j) * step);
    __m128i m0, m1, m2, m3, m4, m5, m6, m7;
    m0 = _mm_loadu_si128((const __m128i *)(tb + 0));
    m1 = _mm_loadu_si128((const __m128i *)(tb + 16));
    m2 = _mm_loadu_si128((const __m128i *)(tb + 32));
    m3 = _mm_loadu_si128((const __m128i *)(tb + 48));
    m4 = _mm_loadu_si128((const __m128i *)(tb + 64));
    m5 = _mm_loadu_si128((const __m128i *)(tb + 80));
    m6 = _mm_loadu_si128((const __m128i *)(tb + 96));
    m7 = _mm_loadu_si128((const __m128i *)(tb + 112));
    M8(_mm_xor_si128, KE[0]);
    for (int r = 1; r <= 9; r++) M8(_mm_aesenc_si128, KE[r]);
    M8(_mm_aesenclast_si128, KE[10]);
    __m128i b0, b1, b2, b3, b4, b5, b6, b7;
    LOAD8(src + 16 * i);
    /* Whiten and fold in the first round key in one pass. */
    b0 = _mm_xor_si128(b0, _mm_xor_si128(m0, KC[0]));
    b1 = _mm_xor_si128(b1, _mm_xor_si128(m1, KC[0]));
    b2 = _mm_xor_si128(b2, _mm_xor_si128(m2, KC[0]));
    b3 = _mm_xor_si128(b3, _mm_xor_si128(m3, KC[0]));
    b4 = _mm_xor_si128(b4, _mm_xor_si128(m4, KC[0]));
    b5 = _mm_xor_si128(b5, _mm_xor_si128(m5, KC[0]));
    b6 = _mm_xor_si128(b6, _mm_xor_si128(m6, KC[0]));
    b7 = _mm_xor_si128(b7, _mm_xor_si128(m7, KC[0]));
    if (enc) {
      for (int r = 1; r <= 9; r++) B8(_mm_aesenc_si128, KC[r]);
      B8(_mm_aesenclast_si128, KC[10]);
    } else {
      for (int r = 1; r <= 9; r++) B8(_mm_aesdec_si128, KC[r]);
      B8(_mm_aesdeclast_si128, KC[10]);
    }
    b0 = _mm_xor_si128(b0, m0); b1 = _mm_xor_si128(b1, m1);
    b2 = _mm_xor_si128(b2, m2); b3 = _mm_xor_si128(b3, m3);
    b4 = _mm_xor_si128(b4, m4); b5 = _mm_xor_si128(b5, m5);
    b6 = _mm_xor_si128(b6, m6); b7 = _mm_xor_si128(b7, m7);
    STORE8(dst + 16 * i);
  }
  for (; i < nblocks; i++) {
    store_be64(tb, t0 + (uint64_t)i * step);
    __m128i m = aesni_enc1(KE, _mm_loadu_si128((const __m128i *)tb));
    __m128i b = _mm_loadu_si128((const __m128i *)(src + 16 * i));
    b = _mm_xor_si128(b, m);
    b = enc ? aesni_enc1(KC, b) : aesni_dec1(KC, b);
    _mm_storeu_si128((__m128i *)(dst + 16 * i), _mm_xor_si128(b, m));
  }
}

/* aeskeygenassist-based expansion — the ISSUE-mandated hardware path for
 * key setup; produces byte-identical schedules to portable_expand. */
__attribute__((target("aes")))
static inline __m128i aesni_expand_step(__m128i key, __m128i gen)
{
  gen = _mm_shuffle_epi32(gen, 0xff);
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  return _mm_xor_si128(key, gen);
}

__attribute__((target("aes")))
static void aesni_expand(const uint8_t *raw, uint8_t *rk)
{
  __m128i w[11];
  w[0] = _mm_loadu_si128((const __m128i *)raw);
#define KEXP(i, rc) \
  w[i] = aesni_expand_step(w[i - 1], _mm_aeskeygenassist_si128(w[i - 1], rc))
  KEXP(1, 0x01); KEXP(2, 0x02); KEXP(3, 0x04); KEXP(4, 0x08);
  KEXP(5, 0x10); KEXP(6, 0x20); KEXP(7, 0x40); KEXP(8, 0x80);
  KEXP(9, 0x1b); KEXP(10, 0x36);
#undef KEXP
  for (int r = 0; r <= 10; r++) {
    _mm_storeu_si128((__m128i *)(rk + 16 * r), w[r]);
    __m128i d = w[10 - r];
    if (r >= 1 && r <= 9) d = _mm_aesimc_si128(d);
    _mm_storeu_si128((__m128i *)(rk + 176 + 16 * r), d);
  }
}

/* ---------------------------------------------------------------- */
/* VAES core (256-bit: four ymm registers carry 8 blocks per round) */
/* ---------------------------------------------------------------- */
#define FIDELIUS_VAES_POSSIBLE 1

#define Y4(op, k)                                                           \
  do {                                                                      \
    y0 = op(y0, k); y1 = op(y1, k); y2 = op(y2, k); y3 = op(y3, k);         \
  } while (0)

#define YM4(op, k)                                                          \
  do {                                                                      \
    n0 = op(n0, k); n1 = op(n1, k); n2 = op(n2, k); n3 = op(n3, k);         \
  } while (0)

#define YLOAD4(v0, v1, v2, v3, p)                                           \
  do {                                                                      \
    v0 = _mm256_loadu_si256((const __m256i *)((p) + 0));                    \
    v1 = _mm256_loadu_si256((const __m256i *)((p) + 32));                   \
    v2 = _mm256_loadu_si256((const __m256i *)((p) + 64));                   \
    v3 = _mm256_loadu_si256((const __m256i *)((p) + 96));                   \
  } while (0)

#define YSTORE4(p)                                                          \
  do {                                                                      \
    _mm256_storeu_si256((__m256i *)((p) + 0), y0);                          \
    _mm256_storeu_si256((__m256i *)((p) + 32), y1);                         \
    _mm256_storeu_si256((__m256i *)((p) + 64), y2);                         \
    _mm256_storeu_si256((__m256i *)((p) + 96), y3);                         \
  } while (0)

__attribute__((target("vaes,avx2,aes")))
static inline void vaes_load_keys(const uint8_t *sched, __m256i K[11])
{
  for (int i = 0; i < 11; i++)
    K[i] = _mm256_broadcastsi128_si256(
        _mm_loadu_si128((const __m128i *)(sched + 16 * i)));
}

__attribute__((target("vaes,avx2,aes")))
static void vaes_ecb(const uint8_t *rk, int enc, const uint8_t *src,
                     uint8_t *dst, long nblocks)
{
  __m256i K[11];
  vaes_load_keys(enc ? rk : rk + 176, K);
  long i = 0;
  for (; i + 8 <= nblocks; i += 8) {
    __m256i y0, y1, y2, y3;
    YLOAD4(y0, y1, y2, y3, src + 16 * i);
    Y4(_mm256_xor_si256, K[0]);
    if (enc) {
      for (int r = 1; r <= 9; r++) Y4(_mm256_aesenc_epi128, K[r]);
      Y4(_mm256_aesenclast_epi128, K[10]);
    } else {
      for (int r = 1; r <= 9; r++) Y4(_mm256_aesdec_epi128, K[r]);
      Y4(_mm256_aesdeclast_epi128, K[10]);
    }
    YSTORE4(dst + 16 * i);
  }
  if (i < nblocks) aesni_ecb(rk, enc, src + 16 * i, dst + 16 * i, nblocks - i);
}

__attribute__((target("vaes,avx2,aes")))
static void vaes_ctr(const uint8_t *rk, uint64_t nonce, const uint8_t *src,
                     uint8_t *dst, long len)
{
  __m256i K[11];
  vaes_load_keys(rk, K);
  long nfull = len / 16;
  uint8_t cb[128];
  for (int j = 0; j < 8; j++) store_be64(cb + 16 * j, nonce);
  long i = 0;
  for (; i + 8 <= nfull; i += 8) {
    for (int j = 0; j < 8; j++)
      store_be64(cb + 16 * j + 8, (uint64_t)(i + j));
    __m256i y0, y1, y2, y3;
    YLOAD4(y0, y1, y2, y3, cb);
    Y4(_mm256_xor_si256, K[0]);
    for (int r = 1; r <= 9; r++) Y4(_mm256_aesenc_epi128, K[r]);
    Y4(_mm256_aesenclast_epi128, K[10]);
    const uint8_t *s = src + 16 * i;
    y0 = _mm256_xor_si256(y0, _mm256_loadu_si256((const __m256i *)(s + 0)));
    y1 = _mm256_xor_si256(y1, _mm256_loadu_si256((const __m256i *)(s + 32)));
    y2 = _mm256_xor_si256(y2, _mm256_loadu_si256((const __m256i *)(s + 64)));
    y3 = _mm256_xor_si256(y3, _mm256_loadu_si256((const __m256i *)(s + 96)));
    YSTORE4(dst + 16 * i);
  }
  /* Full-block stragglers and the partial tail reuse the 128-bit core,
   * continuing the counter at block i. */
  if (16 * i < len)
    aesni_ctr(rk, nonce, (uint64_t)i, src + 16 * i, dst + 16 * i, len - 16 * i);
}

__attribute__((target("vaes,avx2,aes")))
static void vaes_xex(const uint8_t *rk, int enc, uint64_t t0, uint64_t step,
                     const uint8_t *src, uint8_t *dst, long nblocks)
{
  __m256i KE[11], KD[11];
  vaes_load_keys(rk, KE);
  const __m256i *KC = KE;
  if (!enc) {
    vaes_load_keys(rk + 176, KD);
    KC = KD;
  }
  uint8_t tb[128];
  for (int j = 0; j < 8; j++) store_be64(tb + 16 * j + 8, XEX_TWEAK_TAG);
  long i = 0;
  for (; i + 8 <= nblocks; i += 8) {
    for (int j = 0; j < 8; j++)
      store_be64(tb + 16 * j, t0 + (uint64_t)(i + j) * step);
    __m256i n0, n1, n2, n3;
    YLOAD4(n0, n1, n2, n3, tb);
    YM4(_mm256_xor_si256, KE[0]);
    for (int r = 1; r <= 9; r++) YM4(_mm256_aesenc_epi128, KE[r]);
    YM4(_mm256_aesenclast_epi128, KE[10]);
    __m256i y0, y1, y2, y3;
    YLOAD4(y0, y1, y2, y3, src + 16 * i);
    y0 = _mm256_xor_si256(y0, _mm256_xor_si256(n0, KC[0]));
    y1 = _mm256_xor_si256(y1, _mm256_xor_si256(n1, KC[0]));
    y2 = _mm256_xor_si256(y2, _mm256_xor_si256(n2, KC[0]));
    y3 = _mm256_xor_si256(y3, _mm256_xor_si256(n3, KC[0]));
    if (enc) {
      for (int r = 1; r <= 9; r++) Y4(_mm256_aesenc_epi128, KC[r]);
      Y4(_mm256_aesenclast_epi128, KC[10]);
    } else {
      for (int r = 1; r <= 9; r++) Y4(_mm256_aesdec_epi128, KC[r]);
      Y4(_mm256_aesdeclast_epi128, KC[10]);
    }
    y0 = _mm256_xor_si256(y0, n0); y1 = _mm256_xor_si256(y1, n1);
    y2 = _mm256_xor_si256(y2, n2); y3 = _mm256_xor_si256(y3, n3);
    YSTORE4(dst + 16 * i);
  }
  if (i < nblocks)
    aesni_xex(rk, enc, t0 + (uint64_t)i * step, step, src + 16 * i,
              dst + 16 * i, nblocks - i);
}

#endif /* __x86_64__ && __GNUC__ */

/* ------------------------------------------------------------------ */
/* Dispatch + OCaml entry points                                      */
/* ------------------------------------------------------------------ */

static int active_backend = BK_UNDETECTED;
static int cpu_flags = -1;

static int get_cpu_flags(void)
{
  if (cpu_flags >= 0) return cpu_flags;
  int f = 0;
#ifdef FIDELIUS_AESNI_POSSIBLE
  unsigned int eax, ebx, ecx, edx;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    if ((ecx >> 25) & 1) f |= F_AES;
    if ((ecx >> 9) & 1) f |= F_SSSE3;
    if ((ecx >> 19) & 1) f |= F_SSE41;
    if ((ecx >> 27) & 1) { /* OSXSAVE: xgetbv is usable */
      uint32_t lo, hi;
      __asm__ volatile(".byte 0x0f, 0x01, 0xd0" /* xgetbv */
                       : "=a"(lo), "=d"(hi)
                       : "c"(0));
      (void)hi;
      if ((lo & 0x6) == 0x6) f |= F_YMM_OS; /* XMM + YMM state enabled */
    }
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    if ((ebx >> 5) & 1) f |= F_AVX2;
    if ((ebx >> 29) & 1) f |= F_SHA;
    if ((ecx >> 9) & 1) f |= F_VAES;
  }
#endif
  cpu_flags = f;
  return f;
}

static int vaes_usable(void)
{
  int need = F_VAES | F_AVX2 | F_AES | F_YMM_OS;
  return (get_cpu_flags() & need) == need;
}

static int aesni_usable(void)
{
  return (get_cpu_flags() & F_AES) != 0;
}

static int detect(void)
{
  if (active_backend == BK_UNDETECTED) {
    init_tables();
#ifdef FIDELIUS_VAES_POSSIBLE
    if (vaes_usable()) active_backend = BK_VAES;
    else
#endif
#ifdef FIDELIUS_AESNI_POSSIBLE
    if (aesni_usable()) active_backend = BK_AESNI;
    else
#endif
      active_backend = BK_PORTABLE;
  }
  return active_backend;
}

CAMLprim value fidelius_aes_backend(value unit)
{
  (void)unit;
  return Val_long(detect());
}

/* Testing aid: 0 = auto re-probe, 1 = VAES, 2 = AES-NI, 3 = portable.
 * A request for an unavailable tier leaves the selection unchanged.
 * Returns the backend that is active afterwards. */
CAMLprim value fidelius_aes_force_backend(value vmode)
{
  long mode = Long_val(vmode);
  (void)detect();
  switch (mode) {
    case 0:
      active_backend = BK_UNDETECTED;
      break;
#ifdef FIDELIUS_VAES_POSSIBLE
    case BK_VAES:
      if (vaes_usable()) active_backend = BK_VAES;
      break;
#endif
#ifdef FIDELIUS_AESNI_POSSIBLE
    case BK_AESNI:
      if (aesni_usable()) active_backend = BK_AESNI;
      break;
#endif
    case BK_PORTABLE:
      active_backend = BK_PORTABLE;
      break;
    default:
      break;
  }
  return Val_long(detect());
}

CAMLprim value fidelius_aes_cpu_flags(value unit)
{
  (void)unit;
  return Val_long(get_cpu_flags());
}

CAMLprim value fidelius_aes_expand(value vraw, value vrk)
{
  const uint8_t *raw = (const uint8_t *)Bytes_val(vraw);
  uint8_t *rk = (uint8_t *)Bytes_val(vrk);
#ifdef FIDELIUS_AESNI_POSSIBLE
  if (detect() != BK_PORTABLE) {
    aesni_expand(raw, rk);
    return Val_unit;
  }
#endif
  (void)detect();
  portable_expand(raw, rk);
  return Val_unit;
}

CAMLprim value fidelius_aes_blocks(value vrk, value venc, value vsrc,
                                   value vsoff, value vdst, value vdoff,
                                   value vn)
{
  const uint8_t *rk = (const uint8_t *)Bytes_val(vrk);
  int enc = Bool_val(venc);
  const uint8_t *src = (const uint8_t *)Bytes_val(vsrc) + Long_val(vsoff);
  uint8_t *dst = (uint8_t *)Bytes_val(vdst) + Long_val(vdoff);
  long n = Long_val(vn);
  switch (detect()) {
#ifdef FIDELIUS_VAES_POSSIBLE
    /* Runs shorter than one 8-block group never reach the 256-bit loop,
     * and the ymm round-key broadcasts plus the AVX/SSE transition cost
     * ~9x a single aesenc chain — take the 128-bit core straight away. */
    case BK_VAES:
      if (n < 8) aesni_ecb(rk, enc, src, dst, n);
      else vaes_ecb(rk, enc, src, dst, n);
      break;
#endif
#ifdef FIDELIUS_AESNI_POSSIBLE
    case BK_AESNI: aesni_ecb(rk, enc, src, dst, n); break;
#endif
    default: portable_ecb(rk, enc, src, dst, n); break;
  }
  return Val_unit;
}

CAMLprim value fidelius_aes_blocks_bytecode(value *argv, int argn)
{
  (void)argn;
  return fidelius_aes_blocks(argv[0], argv[1], argv[2], argv[3], argv[4],
                             argv[5], argv[6]);
}

CAMLprim value fidelius_aes_ctr(value vrk, value vnonce, value vsrc,
                                value vdst, value vlen)
{
  const uint8_t *rk = (const uint8_t *)Bytes_val(vrk);
  uint64_t nonce = (uint64_t)Int64_val(vnonce);
  const uint8_t *src = (const uint8_t *)Bytes_val(vsrc);
  uint8_t *dst = (uint8_t *)Bytes_val(vdst);
  long len = Long_val(vlen);
  switch (detect()) {
#ifdef FIDELIUS_VAES_POSSIBLE
    case BK_VAES:
      if (len < 128) aesni_ctr(rk, nonce, 0, src, dst, len);
      else vaes_ctr(rk, nonce, src, dst, len);
      break;
#endif
#ifdef FIDELIUS_AESNI_POSSIBLE
    case BK_AESNI: aesni_ctr(rk, nonce, 0, src, dst, len); break;
#endif
    default: portable_ctr(rk, nonce, src, dst, len); break;
  }
  return Val_unit;
}

static void xex_dispatch(const uint8_t *rk, int enc, uint64_t t0,
                         uint64_t step, const uint8_t *src, uint8_t *dst,
                         long nblocks)
{
  switch (detect()) {
#ifdef FIDELIUS_VAES_POSSIBLE
    case BK_VAES:
      if (nblocks < 8) aesni_xex(rk, enc, t0, step, src, dst, nblocks);
      else vaes_xex(rk, enc, t0, step, src, dst, nblocks);
      break;
#endif
#ifdef FIDELIUS_AESNI_POSSIBLE
    case BK_AESNI: aesni_xex(rk, enc, t0, step, src, dst, nblocks); break;
#endif
    default: portable_xex(rk, enc, t0, step, src, dst, nblocks); break;
  }
}

CAMLprim value fidelius_aes_xex(value vrk, value venc, value vt0, value vstep,
                                value vsrc, value vsoff, value vdst,
                                value vdoff, value vlen)
{
  xex_dispatch((const uint8_t *)Bytes_val(vrk), Bool_val(venc),
               (uint64_t)Int64_val(vt0), (uint64_t)Int64_val(vstep),
               (const uint8_t *)Bytes_val(vsrc) + Long_val(vsoff),
               (uint8_t *)Bytes_val(vdst) + Long_val(vdoff),
               Long_val(vlen) / 16);
  return Val_unit;
}

CAMLprim value fidelius_aes_xex_bytecode(value *argv, int argn)
{
  (void)argn;
  return fidelius_aes_xex(argv[0], argv[1], argv[2], argv[3], argv[4],
                          argv[5], argv[6], argv[7], argv[8]);
}

/* Sector-granular XEX: [nsectors] equal tiles of [sector_bytes] each, the
 * tweak restarting at t0 + i*stride for tile i and advancing by 1 per
 * 16-byte block inside the tile — the disk-codec layout, where each
 * 512-byte sector owns a 64-wide tweak lane.  The per-sector tweak
 * sequence is not one affine progression (the stride between tiles differs
 * from the intra-tile step), so it cannot ride fidelius_aes_xex; this
 * entry runs the whole multi-sector batch in one FFI crossing instead. */
CAMLprim value fidelius_aes_xex_sectors(value vrk, value venc, value vt0,
                                        value vstride, value vsrc, value vsoff,
                                        value vdst, value vdoff,
                                        value vsector_bytes, value vnsectors)
{
  const uint8_t *rk = (const uint8_t *)Bytes_val(vrk);
  int enc = Bool_val(venc);
  uint64_t t0 = (uint64_t)Int64_val(vt0);
  uint64_t stride = (uint64_t)Int64_val(vstride);
  const uint8_t *src = (const uint8_t *)Bytes_val(vsrc) + Long_val(vsoff);
  uint8_t *dst = (uint8_t *)Bytes_val(vdst) + Long_val(vdoff);
  long sector_bytes = Long_val(vsector_bytes);
  long nsectors = Long_val(vnsectors);
  long nblocks = sector_bytes / 16;
  long i;
  for (i = 0; i < nsectors; i++)
    xex_dispatch(rk, enc, t0 + (uint64_t)i * stride, 1,
                 src + i * sector_bytes, dst + i * sector_bytes, nblocks);
  return Val_unit;
}

CAMLprim value fidelius_aes_xex_sectors_bytecode(value *argv, int argn)
{
  (void)argn;
  return fidelius_aes_xex_sectors(argv[0], argv[1], argv[2], argv[3], argv[4],
                                  argv[5], argv[6], argv[7], argv[8], argv[9]);
}
