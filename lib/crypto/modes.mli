(** Block-cipher modes of operation built on {!Aes}.

    - ECB: used only by the key-wrapping primitive and tests.
    - CTR: stream encryption of arbitrary-length buffers; used for the
      transport encryption (TEK) of SEV SEND/RECEIVE images.
    - XEX: tweakable per-block mode keyed by a 64-bit tweak. This is how the
      memory-controller engine binds ciphertext to the physical address, so
      moving ciphertext between physical locations (a remap/replay splice)
      decrypts to garbage — the property AMD's SME physical-address tweak
      provides.
    - CBC-MAC: a simple authenticator used where a short keyed tag over
      fixed-length data is needed. *)

val ecb_encrypt : Aes.key -> bytes -> bytes
(** Length must be a multiple of 16. *)

val ecb_decrypt : Aes.key -> bytes -> bytes

val ctr_transform : Aes.key -> nonce:int64 -> bytes -> bytes
(** [ctr_transform k ~nonce data] encrypts or decrypts (the operation is an
    involution) a buffer of any length. The counter block is
    [nonce || block_index]. *)

val xex_encrypt : Aes.key -> tweak:int64 -> bytes -> bytes
(** Length must be a multiple of 16; each 16-byte block is whitened with an
    encrypted tweak derived from [tweak + block_index]. *)

val xex_decrypt : Aes.key -> tweak:int64 -> bytes -> bytes

val xex_encrypt_into :
  Aes.key -> tweak:int64 -> src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> len:int -> unit
(** Allocation-free XEX for the memory-controller hot path. [len] must be a
    multiple of 16. *)

val xex_decrypt_into :
  Aes.key -> tweak:int64 -> src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> len:int -> unit

val cbc_mac : Aes.key -> bytes -> bytes
(** 16-byte tag over a buffer of any length (zero-padded internally; callers
    authenticate fixed-format data only, so length-extension shaping is not a
    concern in the simulator). *)
