(** Block-cipher modes of operation built on {!Aes}.

    - ECB: used only by the key-wrapping primitive and tests.
    - CTR: stream encryption of arbitrary-length buffers; used for the
      transport encryption (TEK) of SEV SEND/RECEIVE images.
    - XEX: tweakable per-block mode keyed by a 64-bit tweak. This is how the
      memory-controller engine binds ciphertext to the physical address, so
      moving ciphertext between physical locations (a remap/replay splice)
      decrypts to garbage — the property AMD's SME physical-address tweak
      provides.
    - CBC-MAC: a simple authenticator used where a short keyed tag over
      fixed-length data is needed.

    Every function here is deterministic — output depends only on the
    key, tweak/nonce and input bytes. Since the hardware-backend work the
    production functions are thin wrappers over the bulk {!Aes} entry
    points (one C call per multi-block run); the pre-backend per-block
    OCaml loops are kept as the [*_reference] executable specification the
    test suite cross-checks every backend against. Outputs are
    byte-identical across backends. The thread-safety rule is unchanged:
    concurrent calls on one {!Aes.key} from two domains are a data race
    (see {!Aes.key}); give each domain its own expanded key. *)

val ecb_encrypt : Aes.key -> bytes -> bytes
(** Length must be a multiple of 16. *)

val ecb_decrypt : Aes.key -> bytes -> bytes

val ctr_transform : Aes.key -> nonce:int64 -> bytes -> bytes
(** [ctr_transform k ~nonce data] encrypts or decrypts (the operation is an
    involution) a buffer of any length. The counter block is
    [nonce || block_index]. *)

val xex_encrypt : Aes.key -> tweak:int64 -> bytes -> bytes
(** Length must be a multiple of 16; each 16-byte block is whitened with an
    encrypted tweak derived from [tweak + block_index]. *)

val xex_decrypt : Aes.key -> tweak:int64 -> bytes -> bytes

val xex_encrypt_into :
  Aes.key -> tweak:int64 -> src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> len:int -> unit
(** Allocation-light XEX for the memory-controller hot path: block [i] of the
    span is whitened with [AES_k(tweak + i)]. [len] must be a multiple of 16.
    [src] and [dst] may be the same buffer at the same offset. *)

val xex_decrypt_into :
  Aes.key -> tweak:int64 -> src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> len:int -> unit

val xex_encrypt_span :
  Aes.key ->
  tweak0:int64 -> tweak_step:int64 ->
  src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> len:int -> unit
(** Span-granular XEX: block [i] is whitened with
    [AES_k(tweak0 + i * tweak_step)]. A whole page (or any multi-block run)
    whose per-block tweaks advance by a fixed stride — e.g. the memory
    controller's physical-block-address tweak, stride 16 — is processed in
    one call with a single reused tweak/mask buffer pair, bit-identically to
    the equivalent per-block loop. [len] must be a multiple of 16. *)

val xex_decrypt_span :
  Aes.key ->
  tweak0:int64 -> tweak_step:int64 ->
  src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> len:int -> unit

val xex_encrypt_sectors :
  Aes.key ->
  tweak0:int64 -> sector_stride:int64 -> sector_bytes:int ->
  src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> nsectors:int -> unit
(** Sector-granular XEX: [nsectors] tiles of [sector_bytes], tile [i]'s
    tweak restarting at [tweak0 + i * sector_stride] and stepping by 1 per
    block inside the tile. This is the disk-codec tweak layout (each sector
    owns its own tweak lane), which is not a single affine progression —
    hence a dedicated bulk call rather than {!xex_encrypt_span}. One C call
    for a whole batch of sectors, byte-identical to the per-sector loop. *)

val xex_decrypt_sectors :
  Aes.key ->
  tweak0:int64 -> sector_stride:int64 -> sector_bytes:int ->
  src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> nsectors:int -> unit

val cbc_mac : Aes.key -> bytes -> bytes
(** 16-byte tag over a buffer of any length (zero-padded internally; callers
    authenticate fixed-format data only, so length-extension shaping is not a
    concern in the simulator). *)

(** {2 Executable specification}

    The pre-backend per-block OCaml loops, built on the {!Aes} reference
    block functions. Semantically identical to the production functions
    above; used by the test suite to cross-check whichever C backend is
    active. *)

val ecb_encrypt_reference : Aes.key -> bytes -> bytes
val ecb_decrypt_reference : Aes.key -> bytes -> bytes
val ctr_transform_reference : Aes.key -> nonce:int64 -> bytes -> bytes

val xex_encrypt_span_reference :
  Aes.key ->
  tweak0:int64 -> tweak_step:int64 ->
  src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> len:int -> unit

val xex_decrypt_span_reference :
  Aes.key ->
  tweak0:int64 -> tweak_step:int64 ->
  src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> len:int -> unit

val xex_encrypt_sectors_reference :
  Aes.key ->
  tweak0:int64 -> sector_stride:int64 -> sector_bytes:int ->
  src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> nsectors:int -> unit

val xex_decrypt_sectors_reference :
  Aes.key ->
  tweak0:int64 -> sector_stride:int64 -> sector_bytes:int ->
  src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> nsectors:int -> unit
