type role = Client | Server

type session = {
  enc_send : Aes.key;
  enc_recv : Aes.key;
  mac_send : Hmac.key;
  mac_recv : Hmac.key;
  mutable seq_send : int64;
  mutable seq_recv : int64;
}

(* Record format: seq(8) | len(4) | ciphertext(len) | tag(32). *)
let overhead = 8 + 4 + 32

let derive shared label =
  Sha256.digest_build (fun ctx ->
      Sha256.feed ctx shared;
      Sha256.feed_string ctx label)

let session_of shared role =
  let c2s_enc = Bytes.sub (derive shared "c2s-enc") 0 16 in
  let s2c_enc = Bytes.sub (derive shared "s2c-enc") 0 16 in
  let c2s_mac = Hmac.key (derive shared "c2s-mac") in
  let s2c_mac = Hmac.key (derive shared "s2c-mac") in
  match role with
  | Client ->
      { enc_send = Aes.expand c2s_enc;
        enc_recv = Aes.expand s2c_enc;
        mac_send = c2s_mac;
        mac_recv = s2c_mac;
        seq_send = 0L;
        seq_recv = 0L }
  | Server ->
      { enc_send = Aes.expand s2c_enc;
        enc_recv = Aes.expand c2s_enc;
        mac_send = s2c_mac;
        mac_recv = c2s_mac;
        seq_send = 0L;
        seq_recv = 0L }

let client_hello rng =
  let secret, public = Dh.generate rng in
  (secret, Dh.public_to_bytes public)

let server_accept rng ~client_hello =
  if Bytes.length client_hello <> 8 then Error "handshake: malformed client hello"
  else begin
    let client_public = Dh.public_of_bytes client_hello in
    let secret, public = Dh.generate rng in
    match Dh.shared_secret secret client_public with
    | shared -> Ok (session_of shared Server, Dh.public_to_bytes public)
    | exception Invalid_argument m -> Error ("handshake: " ^ m)
  end

let client_finish secret ~server_reply =
  if Bytes.length server_reply <> 8 then Error "handshake: malformed server reply"
  else
    match Dh.shared_secret secret (Dh.public_of_bytes server_reply) with
    | shared -> Ok (session_of shared Client)
    | exception Invalid_argument m -> Error ("handshake: " ^ m)

let seal t plain =
  let seq = t.seq_send in
  t.seq_send <- Int64.add seq 1L;
  let cipher = Modes.ctr_transform t.enc_send ~nonce:seq plain in
  let n = Bytes.length cipher in
  let record = Bytes.create (8 + 4 + n + 32) in
  Bytes.set_int64_be record 0 seq;
  Bytes.set_int32_be record 8 (Int32.of_int n);
  Bytes.blit cipher 0 record 12 n;
  (* MAC the header+ciphertext prefix in place; the tag lands just after. *)
  Hmac.mac_build_into t.mac_send
    (fun ctx -> Sha256.feed_sub ctx record ~off:0 ~len:(12 + n))
    ~dst:record ~dst_off:(12 + n);
  record

let open_record t record =
  if Bytes.length record < overhead then Error "record: truncated"
  else begin
    let seq = Bytes.get_int64_be record 0 in
    let n = Int32.to_int (Bytes.get_int32_be record 8) in
    if n < 0 || Bytes.length record <> overhead + n then Error "record: malformed length"
    else if not (Int64.equal seq t.seq_recv) then
      Error
        (Printf.sprintf "record: sequence %Ld, expected %Ld (replayed or reordered)" seq
           t.seq_recv)
    else begin
      if
        not
          (Hmac.verify_build t.mac_recv
             (fun ctx -> Sha256.feed_sub ctx record ~off:0 ~len:(12 + n))
             ~tag:record ~tag_off:(12 + n))
      then Error "record: MAC failure (tampered in transit)"
      else begin
        t.seq_recv <- Int64.add seq 1L;
        Ok (Modes.ctr_transform t.enc_recv ~nonce:seq (Bytes.sub record 12 n))
      end
    end
  end
