(** Authenticated key wrapping.

    Models the SEV firmware's Kwrap: SEND_START wraps the freshly generated
    transport keys (Ktek, Ktik) under the master secret from the DH
    agreement; RECEIVE_START unwraps them on the target platform. The wrap is
    AES-CTR encryption plus an HMAC-SHA256 tag, failing closed on any
    tampering. *)

type wrapped
(** An opaque wrapped blob: ciphertext, nonce and tag. An attacker relaying
    it (the hypervisor) learns nothing about the enclosed key and cannot
    modify it undetected. *)

val wrap : kek:bytes -> bytes -> wrapped
(** [wrap ~kek key] wraps [key] (any length) under the 32-byte key-encryption
    key [kek]. *)

val unwrap : kek:bytes -> wrapped -> bytes option
(** [unwrap ~kek w] is [Some key] when the tag verifies, [None] otherwise. *)

val to_bytes : wrapped -> bytes
(** Serialized form, as carried over the (untrusted) migration channel. *)

val of_bytes : bytes -> wrapped option
(** Parse a serialized wrap; [None] on malformed input. *)
