(** HMAC-SHA256 (RFC 2104).

    Used as the integrity primitive keyed by the transport integrity key
    (Ktik) over SEV SEND/RECEIVE images, and for the key-wrapping tag. *)

val mac : key:bytes -> bytes -> bytes
(** [mac ~key data] is the 32-byte HMAC-SHA256 tag. Keys of any length are
    accepted (hashed down if longer than the block size, per RFC 2104). *)

val verify : key:bytes -> tag:bytes -> bytes -> bool
(** Constant-shape comparison of a received tag against the recomputed one. *)
