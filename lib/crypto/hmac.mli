(** HMAC-SHA256 (RFC 2104).

    Used as the integrity primitive keyed by the transport integrity key
    (Ktik) over SEV SEND/RECEIVE images, for the key-wrapping tag, and for
    the secure-channel record MACs.

    The fast path mirrors {!Sha256}: prepare a {!type-key} once (the two
    xor-padded blocks are derived eagerly instead of per MAC), then MAC with
    the [_build]/[_into] entry points, which feed message parts straight
    into the running hash and write tags into caller-supplied buffers —
    no concatenation, no per-call allocation.

    {b Thread-safety.} The MAC entry points share a per-domain scratch
    context, so they are safe to call concurrently from different fleet
    domains, but a [_build] callback must not itself invoke [Hmac]. *)

type key
(** A prepared MAC key. Derive once with {!val-key}, reuse for every MAC
    under that key. *)

val key : bytes -> key
(** [key raw] prepares [raw] for MACing. Keys of any length are accepted
    (hashed down if longer than the block size, per RFC 2104). *)

val mac : key:bytes -> bytes -> bytes
(** [mac ~key data] is the 32-byte HMAC-SHA256 tag — one-shot convenience
    that re-derives the prepared key each call; hot paths should use
    {!val-key} + {!mac_with}. *)

val mac_with : key -> bytes -> bytes
(** [mac_with k data] is the 32-byte tag over [data]. *)

val mac_build : key -> (Sha256.ctx -> unit) -> bytes
(** [mac_build k f] MACs the message [f] feeds into the given hash context
    ({!Sha256.feed} / {!Sha256.feed_sub} / {!Sha256.feed_u64_be}) — for
    messages made of parts, without concatenating them. [f] must only feed
    the context it is given. *)

val mac_build_into : key -> (Sha256.ctx -> unit) -> dst:bytes -> dst_off:int -> unit
(** Zero-allocation {!mac_build}: the tag lands in [dst] at [dst_off].
    [dst] may be the very buffer the message was fed from, provided the tag
    range lies outside the fed range. *)

val verify : key:bytes -> tag:bytes -> bytes -> bool
(** Constant-shape comparison of a received tag against the recomputed one
    (one-shot; re-derives the prepared key). *)

val verify_with : key -> tag:bytes -> bytes -> bool
(** {!verify} with a prepared key. *)

val verify_build : key -> (Sha256.ctx -> unit) -> tag:bytes -> tag_off:int -> bool
(** [verify_build k f ~tag ~tag_off] recomputes the MAC of the message [f]
    feeds and compares it, constant-shape, against the 32 bytes of [tag] at
    [tag_off] — so a tag can be checked in place inside a record without
    slicing it out. Returns [false] if the tag range leaves the buffer. *)
