/* SHA-256 block compression for Sha256 — the "hash unit" of the modelled
 * secure processor. Two backends, selected once at startup:
 *
 *   - SHA-NI: the x86 SHA extensions (sha256rnds2/sha256msg1/sha256msg2),
 *     when CPUID leaf 7 reports them. This is the same silicon a real
 *     memory-encryption engine would drive.
 *   - A portable scalar C core, used everywhere else.
 *
 * Both compute exactly FIPS 180-4; the OCaml side additionally keeps a
 * from-scratch OCaml compression as the executable specification and the
 * test suite cross-checks the active backend against it.
 *
 * Contract with the OCaml side: the chaining state is an 8-element OCaml
 * int array holding the 32-bit words (immediates only, so plain Field
 * stores are safe), the data is an OCaml Bytes value, and calls never
 * allocate on the OCaml heap ([@@noalloc]).
 */

#include <stdint.h>
#include <stddef.h>

#include <caml/mlvalues.h>

static const uint32_t K[64] = {
  0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u,
  0x3956c25bu, 0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u,
  0xd807aa98u, 0x12835b01u, 0x243185beu, 0x550c7dc3u,
  0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u, 0xc19bf174u,
  0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
  0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau,
  0x983e5152u, 0xa831c66du, 0xb00327c8u, 0xbf597fc7u,
  0xc6e00bf3u, 0xd5a79147u, 0x06ca6351u, 0x14292967u,
  0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu, 0x53380d13u,
  0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
  0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u,
  0xd192e819u, 0xd6990624u, 0xf40e3585u, 0x106aa070u,
  0x19a4c116u, 0x1e376c08u, 0x2748774cu, 0x34b0bcb5u,
  0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu, 0x682e6ff3u,
  0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
  0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

/* ------------------------------------------------------------------ */
/* Portable scalar core                                               */
/* ------------------------------------------------------------------ */

static inline uint32_t rotr32(uint32_t x, int n)
{
  return (x >> n) | (x << (32 - n));
}

static void compress_scalar(uint32_t state[8], const unsigned char *p,
                            long nblocks)
{
  uint32_t w[64];
  while (nblocks-- > 0) {
    for (int t = 0; t < 16; t++) {
      w[t] = ((uint32_t)p[4 * t] << 24) | ((uint32_t)p[4 * t + 1] << 16) |
             ((uint32_t)p[4 * t + 2] << 8) | (uint32_t)p[4 * t + 3];
    }
    for (int t = 16; t < 64; t++) {
      uint32_t s0 =
          rotr32(w[t - 15], 7) ^ rotr32(w[t - 15], 18) ^ (w[t - 15] >> 3);
      uint32_t s1 =
          rotr32(w[t - 2], 17) ^ rotr32(w[t - 2], 19) ^ (w[t - 2] >> 10);
      w[t] = w[t - 16] + s0 + w[t - 7] + s1;
    }
    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int t = 0; t < 64; t++) {
      uint32_t t1 = h + (rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25)) +
                    ((e & f) ^ (~e & g)) + K[t] + w[t];
      uint32_t t2 = (rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22)) +
                    ((a & b) ^ (a & c) ^ (b & c));
      h = g; g = f; f = e; e = d + t1;
      d = c; c = b; b = a; a = t1 + t2;
    }
    state[0] += a; state[1] += b; state[2] += c; state[3] += d;
    state[4] += e; state[5] += f; state[6] += g; state[7] += h;
    p += 64;
  }
}

/* ------------------------------------------------------------------ */
/* SHA-NI core (x86-64 with the SHA extensions)                       */
/* ------------------------------------------------------------------ */

#if defined(__x86_64__) && defined(__GNUC__)
#define FIDELIUS_SHANI_POSSIBLE 1

#include <cpuid.h>
#include <immintrin.h>

static int shani_available(void)
{
  unsigned int eax, ebx, ecx, edx;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return 0;
  if (!((ebx >> 29) & 1)) return 0; /* SHA extensions */
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return 0;
  return (ecx >> 19) & 1; /* SSE4.1 (blend); implies SSSE3 */
}

/* W[g] = msg2(msg1(W[g-4], W[g-3]) + alignr(W[g-1], W[g-2], 4), W[g-1]),
 * the standard four-words-at-a-time schedule recurrence. */
#define NEXT_W(W0, W1, W2, W3)                                              \
  _mm_sha256msg2_epu32(                                                     \
      _mm_add_epi32(_mm_sha256msg1_epu32(W0, W1),                           \
                    _mm_alignr_epi8(W3, W2, 4)),                            \
      W3)

/* Four rounds: feed W+K to the two-rounds-at-a-time instruction twice. */
#define QROUNDS(g, W)                                                       \
  do {                                                                      \
    __m128i msg_ = _mm_add_epi32(                                           \
        W, _mm_loadu_si128((const __m128i *)&K[4 * (g)]));                  \
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg_);                   \
    msg_ = _mm_shuffle_epi32(msg_, 0x0E);                                   \
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg_);                   \
  } while (0)

__attribute__((target("sha,sse4.1,ssse3")))
static void compress_shani(uint32_t state[8], const unsigned char *p,
                           long nblocks)
{
  const __m128i bswap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  /* Repack {a..h} into the ABEF/CDGH register layout sha256rnds2 wants. */
  __m128i tmp = _mm_loadu_si128((const __m128i *)&state[0]);
  __m128i state1 = _mm_loadu_si128((const __m128i *)&state[4]);
  tmp = _mm_shuffle_epi32(tmp, 0xB1);               /* CDAB */
  state1 = _mm_shuffle_epi32(state1, 0x1B);         /* EFGH */
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8); /* ABEF */
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);      /* CDGH */

  while (nblocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i w0 = _mm_shuffle_epi8(_mm_loadu_si128((const __m128i *)(p + 0)),
                                  bswap);
    __m128i w1 = _mm_shuffle_epi8(_mm_loadu_si128((const __m128i *)(p + 16)),
                                  bswap);
    __m128i w2 = _mm_shuffle_epi8(_mm_loadu_si128((const __m128i *)(p + 32)),
                                  bswap);
    __m128i w3 = _mm_shuffle_epi8(_mm_loadu_si128((const __m128i *)(p + 48)),
                                  bswap);

    QROUNDS(0, w0);
    QROUNDS(1, w1);
    QROUNDS(2, w2);
    QROUNDS(3, w3);
    w0 = NEXT_W(w0, w1, w2, w3); QROUNDS(4, w0);
    w1 = NEXT_W(w1, w2, w3, w0); QROUNDS(5, w1);
    w2 = NEXT_W(w2, w3, w0, w1); QROUNDS(6, w2);
    w3 = NEXT_W(w3, w0, w1, w2); QROUNDS(7, w3);
    w0 = NEXT_W(w0, w1, w2, w3); QROUNDS(8, w0);
    w1 = NEXT_W(w1, w2, w3, w0); QROUNDS(9, w1);
    w2 = NEXT_W(w2, w3, w0, w1); QROUNDS(10, w2);
    w3 = NEXT_W(w3, w0, w1, w2); QROUNDS(11, w3);
    w0 = NEXT_W(w0, w1, w2, w3); QROUNDS(12, w0);
    w1 = NEXT_W(w1, w2, w3, w0); QROUNDS(13, w1);
    w2 = NEXT_W(w2, w3, w0, w1); QROUNDS(14, w2);
    w3 = NEXT_W(w3, w0, w1, w2); QROUNDS(15, w3);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    p += 64;
  }

  /* Undo the register layout: ABEF/CDGH back to {a..h}. */
  tmp = _mm_shuffle_epi32(state0, 0x1B);        /* FEBA */
  state1 = _mm_shuffle_epi32(state1, 0xB1);     /* DCHG */
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  /* DCBA */
  state1 = _mm_alignr_epi8(state1, tmp, 8);     /* HGFE */
  _mm_storeu_si128((__m128i *)&state[0], state0);
  _mm_storeu_si128((__m128i *)&state[4], state1);
}

/* ------------------------------------------------------------------ */
/* Two-stream SHA-NI core                                             */
/*                                                                    */
/* sha256rnds2 has multi-cycle latency and each stream's rounds form  */
/* one serial dependency chain; interleaving two independent streams  */
/* lets the second chain issue in the first one's latency shadow, so  */
/* a lockstep pair runs well under 2x the single-stream time. This is */
/* how the modelled integrity engine doubles its BMT update rate.     */
/* ------------------------------------------------------------------ */

#define QROUNDS2(g, WA, WB)                                                 \
  do {                                                                      \
    const __m128i k_ = _mm_loadu_si128((const __m128i *)&K[4 * (g)]);       \
    __m128i ma_ = _mm_add_epi32(WA, k_);                                    \
    __m128i mb_ = _mm_add_epi32(WB, k_);                                    \
    s1a = _mm_sha256rnds2_epu32(s1a, s0a, ma_);                             \
    s1b = _mm_sha256rnds2_epu32(s1b, s0b, mb_);                             \
    ma_ = _mm_shuffle_epi32(ma_, 0x0E);                                     \
    mb_ = _mm_shuffle_epi32(mb_, 0x0E);                                     \
    s0a = _mm_sha256rnds2_epu32(s0a, s1a, ma_);                             \
    s0b = _mm_sha256rnds2_epu32(s0b, s1b, mb_);                             \
  } while (0)

#define LOAD_STATE2(state, s0, s1)                                          \
  do {                                                                      \
    __m128i t_ = _mm_loadu_si128((const __m128i *)&(state)[0]);             \
    s1 = _mm_loadu_si128((const __m128i *)&(state)[4]);                     \
    t_ = _mm_shuffle_epi32(t_, 0xB1);                                       \
    s1 = _mm_shuffle_epi32(s1, 0x1B);                                       \
    s0 = _mm_alignr_epi8(t_, s1, 8);                                        \
    s1 = _mm_blend_epi16(s1, t_, 0xF0);                                     \
  } while (0)

#define STORE_STATE2(state, s0, s1)                                         \
  do {                                                                      \
    __m128i t_ = _mm_shuffle_epi32(s0, 0x1B);                               \
    __m128i u_ = _mm_shuffle_epi32(s1, 0xB1);                               \
    __m128i lo_ = _mm_blend_epi16(t_, u_, 0xF0);                            \
    __m128i hi_ = _mm_alignr_epi8(u_, t_, 8);                               \
    _mm_storeu_si128((__m128i *)&(state)[0], lo_);                          \
    _mm_storeu_si128((__m128i *)&(state)[4], hi_);                          \
  } while (0)

__attribute__((target("sha,sse4.1,ssse3")))
static void compress2_shani(uint32_t sa[8], const unsigned char *pa,
                            uint32_t sb[8], const unsigned char *pb,
                            long nblocks)
{
  const __m128i bswap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);
  __m128i s0a, s1a, s0b, s1b;
  LOAD_STATE2(sa, s0a, s1a);
  LOAD_STATE2(sb, s0b, s1b);

  while (nblocks-- > 0) {
    const __m128i abef_a = s0a, cdgh_a = s1a;
    const __m128i abef_b = s0b, cdgh_b = s1b;

    __m128i w0a = _mm_shuffle_epi8(_mm_loadu_si128((const __m128i *)(pa + 0)), bswap);
    __m128i w0b = _mm_shuffle_epi8(_mm_loadu_si128((const __m128i *)(pb + 0)), bswap);
    __m128i w1a = _mm_shuffle_epi8(_mm_loadu_si128((const __m128i *)(pa + 16)), bswap);
    __m128i w1b = _mm_shuffle_epi8(_mm_loadu_si128((const __m128i *)(pb + 16)), bswap);
    __m128i w2a = _mm_shuffle_epi8(_mm_loadu_si128((const __m128i *)(pa + 32)), bswap);
    __m128i w2b = _mm_shuffle_epi8(_mm_loadu_si128((const __m128i *)(pb + 32)), bswap);
    __m128i w3a = _mm_shuffle_epi8(_mm_loadu_si128((const __m128i *)(pa + 48)), bswap);
    __m128i w3b = _mm_shuffle_epi8(_mm_loadu_si128((const __m128i *)(pb + 48)), bswap);

    QROUNDS2(0, w0a, w0b);
    QROUNDS2(1, w1a, w1b);
    QROUNDS2(2, w2a, w2b);
    QROUNDS2(3, w3a, w3b);
    for (int g = 4; g < 16; g += 4) {
      w0a = NEXT_W(w0a, w1a, w2a, w3a);
      w0b = NEXT_W(w0b, w1b, w2b, w3b);
      QROUNDS2(g, w0a, w0b);
      w1a = NEXT_W(w1a, w2a, w3a, w0a);
      w1b = NEXT_W(w1b, w2b, w3b, w0b);
      QROUNDS2(g + 1, w1a, w1b);
      w2a = NEXT_W(w2a, w3a, w0a, w1a);
      w2b = NEXT_W(w2b, w3b, w0b, w1b);
      QROUNDS2(g + 2, w2a, w2b);
      w3a = NEXT_W(w3a, w0a, w1a, w2a);
      w3b = NEXT_W(w3b, w0b, w1b, w2b);
      QROUNDS2(g + 3, w3a, w3b);
    }

    s0a = _mm_add_epi32(s0a, abef_a);
    s1a = _mm_add_epi32(s1a, cdgh_a);
    s0b = _mm_add_epi32(s0b, abef_b);
    s1b = _mm_add_epi32(s1b, cdgh_b);
    pa += 64;
    pb += 64;
  }

  STORE_STATE2(sa, s0a, s1a);
  STORE_STATE2(sb, s0b, s1b);
}

#endif /* __x86_64__ && __GNUC__ */

/* ------------------------------------------------------------------ */
/* Dispatch + OCaml entry points                                      */
/* ------------------------------------------------------------------ */

/* 0 = undetected, 1 = SHA-NI, 2 = scalar C. */
static int active_backend = 0;

static int detect_backend(void)
{
  if (active_backend == 0) {
#ifdef FIDELIUS_SHANI_POSSIBLE
    active_backend = shani_available() ? 1 : 2;
#else
    active_backend = 2;
#endif
  }
  return active_backend;
}

CAMLprim value fidelius_sha256_backend(value unit)
{
  (void)unit;
  return Val_long(detect_backend());
}

CAMLprim value fidelius_sha256_compress_many(value vh, value vbuf, value voff,
                                             value vnblocks)
{
  uint32_t state[8];
  const unsigned char *p =
      (const unsigned char *)Bytes_val(vbuf) + Long_val(voff);
  long nblocks = Long_val(vnblocks);

  for (int i = 0; i < 8; i++) state[i] = (uint32_t)Long_val(Field(vh, i));

#ifdef FIDELIUS_SHANI_POSSIBLE
  if (detect_backend() == 1)
    compress_shani(state, p, nblocks);
  else
#endif
    compress_scalar(state, p, nblocks);

  /* Immediates only — no write barrier needed. */
  for (int i = 0; i < 8; i++) Field(vh, i) = Val_long(state[i]);
  return Val_unit;
}

CAMLprim value fidelius_sha256_compress2(value vh1, value vb1, value vo1,
                                         value vh2, value vb2, value vo2,
                                         value vnblocks)
{
  uint32_t sa[8], sb[8];
  const unsigned char *pa =
      (const unsigned char *)Bytes_val(vb1) + Long_val(vo1);
  const unsigned char *pb =
      (const unsigned char *)Bytes_val(vb2) + Long_val(vo2);
  long nblocks = Long_val(vnblocks);

  for (int i = 0; i < 8; i++) sa[i] = (uint32_t)Long_val(Field(vh1, i));
  for (int i = 0; i < 8; i++) sb[i] = (uint32_t)Long_val(Field(vh2, i));

#ifdef FIDELIUS_SHANI_POSSIBLE
  if (detect_backend() == 1) {
    compress2_shani(sa, pa, sb, pb, nblocks);
  } else
#endif
  {
    /* Scalar superscalar gains are marginal; run the streams back to
     * back — the results are identical either way. */
    compress_scalar(sa, pa, nblocks);
    compress_scalar(sb, pb, nblocks);
  }

  for (int i = 0; i < 8; i++) Field(vh1, i) = Val_long(sa[i]);
  for (int i = 0; i < 8; i++) Field(vh2, i) = Val_long(sb[i]);
  return Val_unit;
}

CAMLprim value fidelius_sha256_compress2_byte(value *argv, int argn)
{
  (void)argn;
  return fidelius_sha256_compress2(argv[0], argv[1], argv[2], argv[3],
                                   argv[4], argv[5], argv[6]);
}
