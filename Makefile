# Convenience entry points; everything is plain dune underneath.
#
#   make build       compile everything
#   make test        full test suite (includes the trace-export and fleet
#                    determinism smoke checks)
#   make doc         API docs via odoc, warnings-as-errors (skips if odoc absent)
#   make doc-strict  same, but odoc missing is an error (ODOC_REQUIRED=1)
#   make matrix      differential fault-injection matrix (nonzero exit on any
#                    silent corruption or harness error in the Fidelius column)
#   make fleet       fleet scaling benchmark: VMs/sec vs domain count
#                    (results/fleet.csv, results/fleet_trace.json, bench.json)
#   make fleet-scale scaling gate: d4 must beat d1 by >= 2.0x (nonzero exit
#                    otherwise; skips with a message on hosts under 4 cores)
#   make serve       traffic-serving benchmark over the batched PV datapath
#                    (ring throughput sync vs batched, serve sweep -> bench.json)
#   make serve-smoke fast doorbell-amortization and determinism check
#   make migrate     fleet live-migration benchmark: pages sent vs downtime
#                    budget across fleet sizes (results/migrate.csv, bench.json)
#   make migrate-smoke  fast pre-copy/monotonicity/determinism/rollback check
#   make perf        re-measure the bechamel primitives and print the
#                    speedup against the recorded results/bench.json baseline
#   make perf-gate   regression gate over the pinned fast-path keys: any key
#                    slower than 2x its recorded bench.json baseline fails
#                    (best of two runs; PERF_GATE_SKIP=1 to skip)
#   make crypto-selftest  report the CPUID-selected AES/SHA backends and
#                    cross-check every tier against the executable
#                    specification (nonzero exit on any mismatch)
#   make check       what CI runs: build + tests + crypto self-test + matrix
#                    + fleet smoke + serve smoke + migrate smoke + perf gate
#                    + docs

.PHONY: build test doc doc-strict matrix fleet fleet-smoke fleet-scale serve serve-smoke migrate migrate-smoke perf perf-gate crypto-selftest check clean

build:
	dune build @all

test:
	dune runtest

doc:
	sh tools/doc.sh

doc-strict:
	ODOC_REQUIRED=1 sh tools/doc.sh

matrix:
	dune exec bin/fidelius_sim.exe -- inject matrix

fleet:
	dune exec bench/main.exe -- fleet

fleet-smoke:
	dune build @fleet-smoke

fleet-scale:
	dune exec bench/main.exe -- fleet-scale

serve-smoke:
	dune build @serve-smoke

serve:
	dune exec bench/main.exe -- serve

migrate:
	dune exec bench/main.exe -- migrate

migrate-smoke:
	dune build @migrate-smoke

perf:
	dune exec bench/main.exe -- perf

perf-gate:
	dune exec bench/main.exe -- perf-gate

crypto-selftest:
	dune exec bin/fidelius_sim.exe -- cpu-features

check: build test crypto-selftest matrix fleet-smoke serve-smoke migrate-smoke perf-gate doc

clean:
	dune clean
