# Convenience entry points; everything is plain dune underneath.
#
#   make build   compile everything
#   make test    full test suite (includes the trace-export smoke check)
#   make doc     API docs via odoc, warnings-as-errors (skips if odoc absent)
#   make matrix  differential fault-injection matrix (nonzero exit on any
#                silent corruption or harness error in the Fidelius column)
#   make check   what CI runs: build + tests + docs

.PHONY: build test doc matrix check clean

build:
	dune build @all

test:
	dune runtest

doc:
	sh tools/doc.sh

matrix:
	dune exec bin/fidelius_sim.exe -- inject matrix

check: build test doc

clean:
	dune clean
