(* Secure memory sharing between cooperative protected guests
   (paper Section 4.3.7).

   Two tenants establish a shared page through the pre_sharing_op + grant
   flow; then the hypervisor tries each of the grant-table manipulations the
   paper lists, and the GIT policy denies them.

     dune exec examples/memory_sharing.exe *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Fid = Core.Fidelius
module Rng = Fidelius_crypto.Rng

let boot_tenant fid name =
  let rng = Rng.create (Int64.of_int (Hashtbl.hash name)) in
  let prepared =
    Sev.Transport.Owner.prepare ~rng ~platform_public:(Fid.platform_key fid)
      ~policy:Sev.Firmware.policy_nodbg
      ~kernel_pages:[ Bytes.make Hw.Addr.page_size '\000' ]
  in
  match Fid.boot_protected_vm fid ~name ~memory_pages:16 ~prepared with
  | Ok d -> d
  | Error e -> failwith e

let () =
  let machine = Hw.Machine.create ~seed:41L () in
  let hv = Xen.Hypervisor.boot machine in
  let fid = Fid.install hv in
  let alice = boot_tenant fid "alice" in
  let bob = boot_tenant fid "bob" in
  let eve = Xen.Hypervisor.create_domain hv ~name:"eve" ~memory_pages:8 in
  Printf.printf "tenants: alice=dom%d bob=dom%d, conspirator eve=dom%d\n"
    alice.Xen.Domain.domid bob.Xen.Domain.domid eve.Xen.Domain.domid;

  (* The legitimate flow: pre_sharing_op declares the intent, the grant
     hypercall creates the entry under GIT validation, bob maps it. *)
  let sh =
    match Fid.share fid ~owner:alice ~peer:bob ~owner_gvfn:40 ~peer_gvfn:41 ~writable:true with
    | Ok sh -> sh
    | Error e -> failwith e
  in
  Core.Sharing.owner_write fid alice sh ~off:0 (Bytes.of_string "ping from alice");
  Printf.printf "bob reads the shared page: %S\n"
    (Bytes.to_string (Core.Sharing.peer_read fid bob sh ~off:0 ~len:15));
  Core.Sharing.peer_write fid bob sh ~off:64 (Bytes.of_string "pong from bob");
  Printf.printf "alice reads bob's reply (via peer mapping): %S\n"
    (Bytes.to_string (Core.Sharing.peer_read fid bob sh ~off:64 ~len:13));

  (* Hypervisor manipulation 1: redirect the grant to eve. *)
  print_newline ();
  let med = hv.Xen.Hypervisor.med in
  (match Xen.Granttab.get hv.Xen.Hypervisor.granttab sh.Core.Sharing.gref with
  | Some entry -> (
      let redirected = { entry with Xen.Granttab.target = eve.Xen.Domain.domid } in
      match med.Xen.Hypervisor.grant_update sh.Core.Sharing.gref (Some redirected) with
      | Ok () -> print_endline "!!! grant redirected to eve"
      | Error e -> Printf.printf "redirect to eve denied: %s\n" e)
  | None -> ());

  (* Hypervisor manipulation 2: invent a grant of alice's private memory. *)
  let forged =
    { Xen.Granttab.owner = alice.Xen.Domain.domid;
      target = eve.Xen.Domain.domid;
      gfn = 2 (* a private kernel page, never offered *);
      writable = true;
      in_use = true }
  in
  (match med.Xen.Hypervisor.grant_update 12 (Some forged) with
  | Ok () -> print_endline "!!! forged grant accepted"
  | Error e -> Printf.printf "forged grant denied: %s\n" e);

  (* Hypervisor manipulation 3: map alice's shared frame into eve's NPT
     directly, without any grant at all. *)
  let gfn = Xen.Domain.alloc_gfn eve in
  (match
     med.Xen.Hypervisor.npt_update eve gfn
       (Some
          { Hw.Pagetable.frame = sh.Core.Sharing.frame;
            writable = true;
            executable = false;
            c_bit = false })
   with
  | Ok () -> print_endline "!!! direct NPT mapping accepted"
  | Error e -> Printf.printf "direct NPT mapping denied: %s\n" e);

  (* Clean teardown revokes the intent. *)
  (match Fid.unshare fid ~owner:alice sh with
  | Ok () -> print_endline "\nsharing ended; GIT intent revoked"
  | Error e -> Printf.printf "unshare failed: %s\n" e);
  Printf.printf "violations blocked so far: %d\n" (List.length (Fid.violations fid))
