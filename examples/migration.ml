(* Protected VM migration between two physical machines
   (paper Section 4.3.6).

   The snapshot crosses the (attacker-observable) wire as Ktek ciphertext
   with a keyed measurement; the target re-encrypts under a fresh Kvek and
   verifies before the guest resumes.

     dune exec examples/migration.exe *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Fid = Core.Fidelius
module Rng = Fidelius_crypto.Rng

let platform seed =
  let machine = Hw.Machine.create ~seed () in
  let hv = Xen.Hypervisor.boot machine in
  let fid = Fid.install hv in
  (machine, hv, fid)

let () =
  let m1, hv1, fid1 = platform 51L in
  let m2, hv2, fid2 = platform 52L in
  print_endline "two SEV platforms booted, Fidelius installed on both";

  let rng = Rng.create 9L in
  let prepared =
    Sev.Transport.Owner.prepare ~rng ~platform_public:(Fid.platform_key fid1)
      ~policy:Sev.Firmware.policy_nodbg
      ~kernel_pages:[ Bytes.make Hw.Addr.page_size 'K' ]
  in
  let dom =
    match Fid.boot_protected_vm fid1 ~name:"traveller" ~memory_pages:16 ~prepared with
    | Ok d -> d
    | Error e -> failwith e
  in
  Xen.Hypervisor.in_guest hv1 dom (fun () ->
      Xen.Domain.write m1 dom ~addr:0x7000 (Bytes.of_string "in-memory session state"));
  Printf.printf "guest running on machine 1 with runtime state in encrypted memory\n";

  (* Export: SEND_START stops the guest, pages leave as transport
     ciphertext. Peek at the wire to confirm. *)
  let snap =
    match Core.Migrate.send fid1 dom ~target_public:(Fid.platform_key fid2) with
    | Ok s -> s
    | Error e -> failwith (Core.Migrate.error_to_string e)
  in
  Printf.printf "snapshot: %d pages, source domain destroyed (no live migration)\n"
    (List.length snap.Core.Migrate.image.Sev.Transport.pages);
  let wire_leak =
    List.exists
      (fun (_, cipher) ->
        let s = Bytes.to_string cipher in
        let needle = "session state" in
        let n = String.length s and m = String.length needle in
        let rec scan i = i + m <= n && (String.sub s i m = needle || scan (i + 1)) in
        scan 0)
      snap.Core.Migrate.image.Sev.Transport.pages
  in
  Printf.printf "wire carries plaintext: %b\n" wire_leak;

  (* Import on machine 2. *)
  let dom' =
    match Core.Migrate.receive fid2 snap with
    | Ok d -> d
    | Error e -> failwith (Core.Migrate.error_to_string e)
  in
  let state =
    Xen.Hypervisor.in_guest hv2 dom' (fun () ->
        Xen.Domain.read m2 dom' ~addr:0x7000 ~len:23)
  in
  Printf.printf "machine 2 guest dom%d resumes with state: %S\n" dom'.Xen.Domain.domid
    (Bytes.to_string state);
  Printf.printf "protected on target: %b\n" (Fid.is_protected fid2 dom'.Xen.Domain.domid);

  (* A replayed/tampered snapshot is refused by the target firmware. *)
  let tampered =
    { snap with
      Core.Migrate.image =
        { snap.Core.Migrate.image with
          Sev.Transport.pages =
            List.map
              (fun (i, c) ->
                let c = Bytes.copy c in
                Bytes.set c 0 (Char.chr (Char.code (Bytes.get c 0) lxor 1));
                (i, c))
              snap.Core.Migrate.image.Sev.Transport.pages } }
  in
  match Core.Migrate.receive fid2 tampered with
  | Ok _ -> print_endline "!!! tampered snapshot accepted"
  | Error e -> Printf.printf "tampered snapshot refused: %s\n" (Core.Migrate.error_to_string e)
