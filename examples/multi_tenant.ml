(* Multi-tenant host: several guests at different protection levels built
   through the xl-style toolstack, scheduled round-robin, each doing disk
   I/O with its configured codec — while the management side snoops every
   platter and shared buffer and reports what it could actually see.

     dune exec examples/multi_tenant.exe *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Core = Fidelius_core
module Xl = Core.Xl

let secret_of name = Printf.sprintf "<<%s-PAYROLL-DATA>>" (String.uppercase_ascii name)

let sector_payload name =
  let s = secret_of name in
  let b = Bytes.make Xen.Vdisk.sector_size '.' in
  Bytes.blit_string s 0 b 0 (String.length s);
  b

let snoop_sees needle haystack =
  let s = Bytes.to_string haystack and m = String.length needle in
  let n = String.length s in
  let rec scan i = i + m <= n && (String.sub s i m = needle || scan (i + 1)) in
  scan 0

let () =
  let machine = Hw.Machine.create ~seed:77L () in
  let hv = Xen.Hypervisor.boot machine in
  let fid = Core.Fidelius.install hv in
  let tenants =
    [ ("legacy", Xl.Unprotected, Xl.Plain_io);
      ("bank", Xl.Protected fid, Xl.Aes_ni_io);
      ("hospital", Xl.Protected fid, Xl.Sev_api_io);
      ("lab", Xl.Protected fid, Xl.Gek_io) ]
  in
  let built =
    List.map
      (fun (name, protection, codec) ->
        let cfg =
          { (Xl.default ~name) with
            Xl.protection;
            memory_pages = 20;
            seed = Int64.of_int (Hashtbl.hash name);
            disk = Some { Xl.contents = Bytes.create 4096; codec; buffer_gvfn = 120 } }
        in
        match Xl.create hv cfg with
        | Ok b ->
            Printf.printf "created %-10s dom%d  protection=%s codec=%s\n" name
              b.Xl.domain.Xen.Domain.domid
              (match protection with
              | Xl.Unprotected -> "none"
              | Xl.Plain_sev -> "plain-sev"
              | Xl.Protected _ -> "fidelius")
              (match codec with
              | Xl.Plain_io -> "plain"
              | Xl.Aes_ni_io -> "aes-ni"
              | Xl.Sev_api_io -> "sev-api"
              | Xl.Gek_io -> "gek");
            (name, b)
        | Error e -> failwith (name ^ ": " ^ e))
      tenants
  in
  (* A few scheduled rounds: each tenant's turn writes its secret to disk
     and reads it back through its own codec. *)
  print_newline ();
  for round = 1 to 2 do
    List.iter
      (fun (name, b) ->
        match Xen.Sched.next hv.Xen.Hypervisor.sched with
        | _ -> (
            match b.Xl.frontend with
            | Some fe -> (
                let sector = round in
                (match Xen.Blkif.write_sectors fe ~sector (sector_payload name) with
                | Ok () -> ()
                | Error e -> failwith e);
                match Xen.Blkif.read_sectors fe ~sector ~count:1 with
                | Ok back ->
                    if round = 1 then
                      Printf.printf "%-10s round-trips its data: %b\n" name
                        (snoop_sees (secret_of name) back)
                | Error e -> failwith e)
            | None -> ()))
      built
  done;
  (* The management side inspects everything it can reach. *)
  print_newline ();
  print_endline "management-side snooping (platter + shared buffer + DRAM):";
  List.iter
    (fun (name, b) ->
      match (b.Xl.frontend, b.Xl.backend) with
      | Some _, Some be ->
          let platter = Xen.Vdisk.peek (Xen.Blkif.backend_disk be) ~sector:1 ~count:2 in
          let buffer = Hw.Physmem.dump machine.Hw.Machine.mem (Xen.Blkif.shared_frame be) in
          let frame_leak =
            List.exists
              (fun pfn -> snoop_sees (secret_of name) (Hw.Physmem.dump machine.Hw.Machine.mem pfn))
              b.Xl.domain.Xen.Domain.frames
          in
          Printf.printf "  %-10s platter=%-5b buffer=%-5b dram=%b\n" name
            (snoop_sees (secret_of name) platter)
            (snoop_sees (secret_of name) buffer)
            frame_leak
      | _ -> ())
    built;
  print_newline ();
  List.iter (fun (_, b) -> Xl.destroy hv b) built;
  Printf.printf "all tenants destroyed; violations blocked during the run: %d\n"
    (List.length (Core.Fidelius.violations fid))
