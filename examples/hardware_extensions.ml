(* The paper's Section 8 hardware suggestions, implemented as extensions:

   1. Bonsai-Merkle-Tree integrity in the secure processor — turns the
      physical-channel attacks Fidelius can only shrug at (Rowhammer,
      in-place ciphertext replay by a device) into *detected* violations.
   2. Customized keys (SETENC_GEK / ENC / DEC) — the SEV-based I/O path
      without the s-dom/r-dom helper-context gymnastics.

     dune exec examples/hardware_extensions.exe *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Fid = Core.Fidelius
module Rng = Fidelius_crypto.Rng

let () =
  let machine = Hw.Machine.create ~seed:81L () in
  let hv = Xen.Hypervisor.boot machine in
  let fid = Fid.install hv in
  let rng = Rng.create 10L in
  let prepared =
    Sev.Transport.Owner.prepare ~rng ~platform_public:(Fid.platform_key fid)
      ~policy:Sev.Firmware.policy_nodbg
      ~kernel_pages:[ Bytes.make Hw.Addr.page_size '\000' ]
  in
  let dom =
    match Fid.boot_protected_vm fid ~name:"ext-guest" ~memory_pages:16 ~prepared with
    | Ok d -> d
    | Error e -> failwith e
  in

  (* ---- 1. BMT integrity -------------------------------------------------- *)
  print_endline "== Bonsai Merkle Tree integrity (Section 8, suggestion 1) ==";
  let integ = Core.Integrity.protect fid dom in
  Core.Integrity.guest_write integ ~addr:0x4000 (Bytes.of_string "balance: 1000 EUR");
  Printf.printf "root after trusted write: %s...\n"
    (String.sub (Fidelius_crypto.Sha256.hex (Core.Integrity.root integ)) 0 16);
  (match Core.Integrity.verified_read integ ~addr:0x4000 ~len:17 with
  | Ok b -> Printf.printf "verified read: %S\n" (Bytes.to_string b)
  | Error e -> Printf.printf "unexpected: %s\n" e);
  (* A Rowhammer flip on the frame: without BMT this garbles silently;
     with BMT it is detected before the guest consumes the data. *)
  (match Hw.Pagetable.lookup dom.Xen.Domain.npt 4 with
  | Some npte ->
      Hw.Cache.invalidate_page machine.Hw.Machine.cache npte.Hw.Pagetable.frame;
      Hw.Physmem.flip_bit machine.Hw.Machine.mem npte.Hw.Pagetable.frame ~off:7 ~bit:3;
      print_endline "rowhammer: flipped one bit in the frame's ciphertext"
  | None -> ());
  (match Core.Integrity.verified_read integ ~addr:0x4000 ~len:17 with
  | Ok b -> Printf.printf "!!! read passed: %S\n" (Bytes.to_string b)
  | Error e -> Printf.printf "verified read refused: %s\n" e);
  Printf.printf "whole-domain sweep: %s\n"
    (match Core.Integrity.verify_domain integ with
    | Ok () -> "clean"
    | Error e -> e);
  Printf.printf "hashes performed so far: %d\n" (Core.Integrity.hashes_performed integ);

  (* ---- 2. customized keys ------------------------------------------------- *)
  print_endline "\n== Customized keys: SETENC_GEK / ENC / DEC (suggestion 2) ==";
  let gek_io =
    match Fid.setup_gek_io fid dom ~md_gvfn:310 with Ok io -> io | Error e -> failwith e
  in
  Printf.printf "setup: 1 firmware command, GEK id %d, guest context stays RUNNING\n"
    (Core.Io_protect.gek_id gek_io);
  let disk = Xen.Vdisk.create ~nr_sectors:32 in
  let fe, _ =
    match Xen.Blkif.connect hv dom ~disk ~buffer_gvfn:311 with
    | Ok v -> v
    | Error e -> failwith e
  in
  Xen.Blkif.set_codec fe (Fid.gek_codec gek_io);
  (match Xen.Blkif.write_sectors fe ~sector:0 (Bytes.of_string (String.concat "" [ "GEK-PROTECTED"; String.make 499 '-' ])) with
  | Ok () -> ()
  | Error e -> failwith e);
  let platter = Xen.Vdisk.peek disk ~sector:0 ~count:1 in
  let leak =
    let s = Bytes.to_string platter in
    let rec scan i = i + 3 <= String.length s && (String.sub s i 3 = "GEK" || scan (i + 1)) in
    scan 0
  in
  Printf.printf "platter sees plaintext: %b\n" leak;
  (match Xen.Blkif.read_sectors fe ~sector:0 ~count:1 with
  | Ok b -> Printf.printf "guest reads back: %S\n" (Bytes.to_string (Bytes.sub b 0 13))
  | Error e -> failwith e);
  Printf.printf "compare: the SEND/RECEIVE retrofit needs 3 commands and 2 helper contexts\n"
