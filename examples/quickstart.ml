(* Quickstart: boot a Fidelius-protected VM and see what the hypervisor can
   and cannot do.

     dune exec examples/quickstart.exe *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Fid = Fidelius_core.Fidelius
module Rng = Fidelius_crypto.Rng

let () =
  (* 1. A physical host: DRAM, SME/SEV memory controller, CPU, IOMMU. *)
  let machine = Hw.Machine.create ~seed:2026L () in

  (* 2. Boot the (untrusted) hypervisor, then install Fidelius over it:
     late launch, PIT/GIT construction, write-protection of the mapping
     structures, binary scan of the privileged instructions. *)
  let hv = Xen.Hypervisor.boot machine in
  let fid = Fid.install hv in
  print_endline "Fidelius installed over the running hypervisor.";

  (* 3. The guest owner prepares an encrypted kernel image offline,
     targeted at this platform's public key. *)
  let owner_rng = Rng.create 7L in
  let kernel = List.init 4 (fun i -> Bytes.make Hw.Addr.page_size (Char.chr (0x41 + i))) in
  let prepared =
    Sev.Transport.Owner.prepare ~rng:owner_rng ~platform_public:(Fid.platform_key fid)
      ~policy:Sev.Firmware.policy_nodbg ~kernel_pages:kernel
  in

  (* 4. Boot it: RECEIVE_START unwraps the transport keys, the ciphertext
     pages are loaded and re-encrypted under a fresh Kvek, the measurement
     is verified, and the guest enters through the gated VMRUN. *)
  let dom =
    match Fid.boot_protected_vm fid ~name:"tenant" ~memory_pages:32 ~prepared with
    | Ok dom -> dom
    | Error e -> failwith e
  in
  Printf.printf "Protected guest dom%d is running.\n" dom.Xen.Domain.domid;

  (* 5. The guest computes on secrets in its encrypted memory. *)
  Xen.Hypervisor.in_guest hv dom (fun () ->
      Xen.Domain.write machine dom ~addr:0x8000 (Bytes.of_string "tenant secret: 4242"));
  let inside =
    Xen.Hypervisor.in_guest hv dom (fun () ->
        Xen.Domain.read machine dom ~addr:0x8000 ~len:19)
  in
  Printf.printf "Guest reads its own memory:   %S\n" (Bytes.to_string inside);

  (* 6. The hypervisor tries the same read through its direct map: the
     frame was revoked from its address space at allocation time. *)
  let frame =
    match Hw.Pagetable.lookup dom.Xen.Domain.npt 8 with
    | Some npte -> npte.Hw.Pagetable.frame
    | None -> failwith "gfn 8 unbacked"
  in
  (try
     let snoop = Xen.Hypervisor.host_read hv frame ~off:0 ~len:19 in
     Printf.printf "Hypervisor read:              %S (!!)\n" (Bytes.to_string snoop)
   with Hw.Mmu.Fault { reason; _ } ->
     Printf.printf "Hypervisor read:              page fault (%s)\n" reason);

  (* 7. Even physically dumping the DRAM yields ciphertext. *)
  let dump = Hw.Physmem.dump machine.Hw.Machine.mem frame in
  Printf.printf "Cold-boot dump of the frame:  %S...\n"
    (String.escaped (Bytes.to_string (Bytes.sub dump 0 19)));

  (* 8. Attestation-style summary. *)
  print_newline ();
  print_string (Fid.attestation_report fid)
