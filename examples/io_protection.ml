(* Runtime disk-I/O protection, both encoders (paper Section 4.3.5).

   A protected guest mounts an owner-encrypted disk with the AES-NI codec,
   then a second disk through the SEV-API helper contexts. In both cases the
   driver domain, the shared I/O buffer and the platter see only ciphertext.

     dune exec examples/io_protection.exe *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Core = Fidelius_core
module Fid = Core.Fidelius
module Rng = Fidelius_crypto.Rng

let visible_secret needle haystack =
  let s = Bytes.to_string haystack and m = String.length needle in
  let n = String.length s in
  let rec scan i = i + m <= n && (String.sub s i m = needle || scan (i + 1)) in
  scan 0

let () =
  let machine = Hw.Machine.create ~seed:31L () in
  let hv = Xen.Hypervisor.boot machine in
  let fid = Fid.install hv in
  let rng = Rng.create 8L in
  let prepared =
    Sev.Transport.Owner.prepare ~rng ~platform_public:(Fid.platform_key fid)
      ~policy:Sev.Firmware.policy_nodbg
      ~kernel_pages:[ Bytes.make Hw.Addr.page_size '\000' ]
  in
  let dom =
    match Fid.boot_protected_vm fid ~name:"io-guest" ~memory_pages:24 ~prepared with
    | Ok d -> d
    | Error e -> failwith e
  in
  let kblk = Fid.kblk_of_guest fid dom in

  (* ---- AES-NI path ------------------------------------------------------ *)
  print_endline "== AES-NI path (processors with the instruction set) ==";
  (* The owner shipped the disk image pre-encrypted under Kblk. *)
  let plain_fs = Bytes.make (32 * 512) '.' in
  Bytes.blit_string "MY-DATABASE-ROW: salary=123456" 0 plain_fs (4 * 512) 30;
  let disk = Xen.Vdisk.of_bytes (Core.Io_protect.encrypt_disk ~kblk plain_fs) in
  let fe, be =
    match Xen.Blkif.connect hv dom ~disk ~buffer_gvfn:200 with
    | Ok v -> v
    | Error e -> failwith e
  in
  Xen.Blkif.set_codec fe (Fid.aesni_codec fid ~kblk);
  (match Xen.Blkif.read_sectors fe ~sector:4 ~count:1 with
  | Ok b -> Printf.printf "guest reads sector 4:   %S\n" (String.trim (Bytes.to_string (Bytes.sub b 0 30)))
  | Error e -> failwith e);
  (match Xen.Blkif.write_sectors fe ~sector:10 (Bytes.of_string (String.concat "" [ "CONFIDENTIAL-WRITE"; String.make 494 '_' ])) with
  | Ok () -> ()
  | Error e -> failwith e);
  let platter = Xen.Vdisk.peek disk ~sector:10 ~count:1 in
  let buffer = Hw.Physmem.dump machine.Hw.Machine.mem (Xen.Blkif.shared_frame be) in
  Printf.printf "platter sees secret:    %b\n" (visible_secret "CONFIDENTIAL" platter);
  Printf.printf "shared buffer sees it:  %b\n" (visible_secret "CONFIDENTIAL" buffer);

  (* ---- SEV-API path ------------------------------------------------------ *)
  print_endline "\n== SEV-API path (no AES-NI: the paper's novel firmware reuse) ==";
  let io =
    match Fid.setup_sev_io fid dom ~md_gvfn:300 with Ok io -> io | Error e -> failwith e
  in
  let s_handle, r_handle = Core.Io_protect.helper_handles io in
  Printf.printf "helper contexts: s-dom handle %d (%s), r-dom handle %d (%s)\n" s_handle
    (match Sev.Firmware.state_of hv.Xen.Hypervisor.fw ~handle:s_handle with
    | Some s -> Sev.State.to_string s
    | None -> "?")
    r_handle
    (match Sev.Firmware.state_of hv.Xen.Hypervisor.fw ~handle:r_handle with
    | Some s -> Sev.State.to_string s
    | None -> "?");
  let disk2 = Xen.Vdisk.create ~nr_sectors:32 in
  let fe2, _ =
    match Xen.Blkif.connect hv dom ~disk:disk2 ~buffer_gvfn:301 with
    | Ok v -> v
    | Error e -> failwith e
  in
  Xen.Blkif.set_codec fe2 (Fid.sev_codec io);
  (match Xen.Blkif.write_sectors fe2 ~sector:0 (Bytes.of_string (String.concat "" [ "SEV-PATH-SECRET"; String.make 497 '~' ])) with
  | Ok () -> ()
  | Error e -> failwith e);
  Printf.printf "platter sees secret:    %b\n"
    (visible_secret "SEV-PATH" (Xen.Vdisk.peek disk2 ~sector:0 ~count:1));
  (match Xen.Blkif.read_sectors fe2 ~sector:0 ~count:1 with
  | Ok b -> Printf.printf "guest reads it back:    %S\n" (Bytes.to_string (Bytes.sub b 0 15))
  | Error e -> failwith e);

  (* ---- cost comparison ----------------------------------------------------- *)
  print_endline "\n== encoder cycle cost (from the calibrated engine rates) ==";
  let c = machine.Hw.Machine.costs in
  Printf.printf "per 16-byte block: memcpy %d, +AES-NI %d, +SEV engine %d, +software AES %d\n"
    c.Hw.Cost.memcpy_block c.Hw.Cost.aesni_block c.Hw.Cost.sev_engine_block
    c.Hw.Cost.sw_aes_block;
  let ledger = machine.Hw.Machine.ledger in
  Printf.printf "cycles charged to io-encode-aesni: %d, io-encode-sev: %d\n"
    (Hw.Cost.category ledger "io-encode-aesni")
    (Hw.Cost.category ledger "io-encode-sev")
