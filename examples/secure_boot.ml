(* Secure boot from an encrypted kernel image (paper Sections 4.3.2-4.3.3).

   Walks the full owner-to-platform flow, then demonstrates that both forms
   of supply-chain tampering are caught before the guest ever runs: a
   modified image page, and an image prepared for a different platform.

     dune exec examples/secure_boot.exe *)

module Hw = Fidelius_hw
module Xen = Fidelius_xen
module Sev = Fidelius_sev
module Fid = Fidelius_core.Fidelius
module Rng = Fidelius_crypto.Rng
module Dh = Fidelius_crypto.Dh

let step n msg = Printf.printf "[%d] %s\n" n msg

let () =
  let machine = Hw.Machine.create ~seed:11L () in
  let hv = Xen.Hypervisor.boot machine in
  let fid = Fid.install hv in
  step 1 "Fidelius late-launched; hypervisor text measured:";
  Printf.printf "      %s\n"
    (Fidelius_crypto.Sha256.hex (Fidelius_core.Iso.measure_xen_text hv));

  (* --- owner side, in a trusted environment --------------------------- *)
  let owner_rng = Rng.create 5150L in
  let kernel =
    List.init 6 (fun i ->
        let p = Bytes.make Hw.Addr.page_size '\000' in
        Bytes.blit_string (Printf.sprintf "kernel page %d contents" i) 0 p 128 22;
        p)
  in
  let prepared =
    Sev.Transport.Owner.prepare ~rng:owner_rng ~platform_public:(Fid.platform_key fid)
      ~policy:Sev.Firmware.policy_nodbg ~kernel_pages:kernel
  in
  step 2
    (Printf.sprintf
       "owner prepared a %d-page encrypted kernel image (Kblk embedded at offset %d of page 0)"
       (List.length prepared.Sev.Transport.Owner.image.Sev.Transport.pages)
       Sev.Transport.Owner.kblk_offset);

  (* --- the honest boot -------------------------------------------------- *)
  let dom =
    match Fid.boot_protected_vm fid ~name:"secure" ~memory_pages:16 ~prepared with
    | Ok dom -> dom
    | Error e -> failwith e
  in
  step 3 "RECEIVE flow completed: keys unwrapped, pages re-encrypted, measurement verified";
  let text =
    Xen.Hypervisor.in_guest hv dom (fun () ->
        Xen.Domain.read machine dom ~addr:(Hw.Addr.addr_of 3 128) ~len:22)
  in
  Printf.printf "      guest sees page 3: %S\n" (Bytes.to_string text);
  let kblk = Fid.kblk_of_guest fid dom in
  step 4
    (Printf.sprintf "guest recovered its disk key from the encrypted image: Kblk ok = %b"
       (Bytes.equal kblk prepared.Sev.Transport.Owner.kblk));

  (* --- tampered image --------------------------------------------------- *)
  let tampered =
    { prepared with
      Sev.Transport.Owner.image =
        { prepared.Sev.Transport.Owner.image with
          Sev.Transport.pages =
            List.map
              (fun (i, c) ->
                let c = Bytes.copy c in
                if i = 2 then Bytes.set c 50 '\xff';
                (i, c))
              prepared.Sev.Transport.Owner.image.Sev.Transport.pages } }
  in
  (match Fid.boot_protected_vm fid ~name:"tampered" ~memory_pages:16 ~prepared:tampered with
  | Ok _ -> step 5 "!!! tampered image booted — this should never print"
  | Error e -> step 5 (Printf.sprintf "tampered image rejected: %s" e));

  (* --- image for another platform -------------------------------------- *)
  let other_rng = Rng.create 6L in
  let _, foreign_platform = Dh.generate other_rng in
  let misdirected =
    Sev.Transport.Owner.prepare ~rng:other_rng ~platform_public:foreign_platform
      ~policy:Sev.Firmware.policy_nodbg ~kernel_pages:kernel
  in
  (match Fid.boot_protected_vm fid ~name:"misdirected" ~memory_pages:16 ~prepared:misdirected with
  | Ok _ -> step 6 "!!! foreign image booted — this should never print"
  | Error e -> step 6 (Printf.sprintf "image for another platform rejected: %s" e));

  (* --- shutdown ---------------------------------------------------------- *)
  let frames = dom.Xen.Domain.frames in
  Fid.shutdown_protected_vm fid dom;
  let scrubbed =
    List.for_all
      (fun pfn ->
        Bytes.for_all (fun c -> c = '\000')
          (Hw.Physmem.read_raw machine.Hw.Machine.mem pfn ~off:0 ~len:64))
      frames
  in
  step 7 (Printf.sprintf "shutdown: DEACTIVATE+DECOMMISSION done, %d frames scrubbed = %b"
            (List.length frames) scrubbed)
