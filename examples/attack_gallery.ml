(* The full attack gallery: every surface from the paper's security
   analysis, executed against plain SEV and against Fidelius.

     dune exec examples/attack_gallery.exe *)

module Attacks = Fidelius_attacks

let () =
  print_endline "Running the attack catalogue against both stacks...";
  print_endline "(each attack gets fresh victims: plain SEV, SEV-ES, and Fidelius)\n";
  let rows = Attacks.Runner.run_all () in
  List.iter
    (fun (r : Attacks.Runner.row) ->
      Printf.printf "%-22s (paper %s)\n" r.Attacks.Runner.attack.Attacks.Surface.id
        r.Attacks.Runner.attack.Attacks.Surface.paper_ref;
      Printf.printf "    %s\n" r.Attacks.Runner.attack.Attacks.Surface.description;
      Printf.printf "    plain SEV: %s\n"
        (Attacks.Surface.outcome_to_string r.Attacks.Runner.baseline);
      Printf.printf "    SEV-ES:    %s\n"
        (Attacks.Surface.outcome_to_string r.Attacks.Runner.sev_es);
      Printf.printf "    fidelius:  %s\n\n"
        (Attacks.Surface.outcome_to_string r.Attacks.Runner.fidelius))
    rows;
  let total, defended, base_vuln = Attacks.Runner.summary rows in
  let es_vuln =
    List.length
      (List.filter (fun r -> not (Attacks.Surface.is_defended r.Attacks.Runner.sev_es)) rows)
  in
  Printf.printf "%s\n" (String.make 70 '-');
  Printf.printf "%d attacks: plain SEV falls to %d, SEV-ES still to %d; Fidelius defends %d/%d\n"
    total base_vuln es_vuln defended total
